"""Batched GEMM with identical sub-problem shapes (cuBLAS-style).

This is the primitive conventional MHA implementations rely on — and the
reason they cannot exploit variable lengths: every sub-problem in the
batch must share one ``(m, n, k)`` shape, so inputs are padded to the
longest sequence and the padded FLOPs are burned for real (§III-D).

:func:`tile_gemm` is the opposite end of the spectrum: the host mirror
of the paper's *grouped* GEMM.  The per-segment projections of a packed
megabatch all share ``(n, k)`` and stack contiguously along ``m``, so —
instead of one BLAS call per segment, each paying its own dispatch and
threading ramp — a single call covers every segment of the tile at
once, exactly as the grouped kernel amortises CTA scheduling across
variable-length sub-problems.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import tensor_bytes
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.gemm import gemm, gemm_efficiency, select_tile


def batched_gemm_launch(
    batch_count: int,
    m: int,
    n: int,
    k: int,
    *,
    name: str = "batched_gemm",
    category: str = "attention",
) -> KernelLaunch:
    """Cost descriptor for ``batch_count`` identical ``m x n x k`` GEMMs."""
    if batch_count <= 0:
        raise ValueError(f"batch_count must be positive, got {batch_count}")
    tile = select_tile(m, n)
    tiles = math.ceil(m / tile.tile_m) * math.ceil(n / tile.tile_n)
    return KernelLaunch(
        name=name,
        category=category,
        grid=batch_count * tiles,
        block_threads=tile.block_threads,
        flops=2.0 * batch_count * m * n * k,
        dram_bytes=batch_count * tensor_bytes(m, n),
        hot_bytes=batch_count * (tensor_bytes(m, k) + tensor_bytes(k, n)),
        compute_unit=ComputeUnit.TENSOR_FP16,
        compute_efficiency=gemm_efficiency(m, n, k, tile),
        shared_mem_per_block=tile.smem_bytes,
        regs_per_thread=tile.regs_per_thread,
    )


def batched_gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    transpose_b: bool = False,
    ctx: ExecutionContext | None = None,
    name: str = "batched_gemm",
    category: str = "attention",
) -> np.ndarray:
    """Compute ``a @ b`` (or ``a @ b.T``) over leading batch axes.

    ``a`` and ``b`` are ``[..., m, k]`` and ``[..., k, n]`` (or
    ``[..., n, k]`` with ``transpose_b``); leading axes must match and are
    flattened into the cuBLAS batch count.
    """
    if a.ndim < 3 or b.ndim < 3:
        raise ValueError(
            f"batched gemm expects >=3-D operands, got {a.shape}, {b.shape}"
        )
    if a.shape[:-2] != b.shape[:-2]:
        raise ValueError(
            f"batch axes mismatch: {a.shape[:-2]} vs {b.shape[:-2]}"
        )
    b_eff = np.swapaxes(b, -1, -2) if transpose_b else b
    if a.shape[-1] != b_eff.shape[-2]:
        raise ValueError(f"inner dims mismatch: {a.shape} @ {b_eff.shape}")

    batch_count = int(np.prod(a.shape[:-2]))
    m, k = a.shape[-2], a.shape[-1]
    n = b_eff.shape[-1]

    resolve_context(ctx).launch(
        batched_gemm_launch(batch_count, m, n, k, name=name, category=category)
    )
    return a @ b_eff


def tile_gemm(
    x_packed: np.ndarray,
    w: np.ndarray,
    *,
    segment_offsets: np.ndarray,
    bias: np.ndarray | None = None,
    activation: str | None = None,
    gelu_variant: str = "exact",
    ctx: ExecutionContext | None = None,
    name: str = "gemm",
    category: str = "gemm",
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
) -> np.ndarray:
    """Project every segment of a packed tile buffer in **one** BLAS call.

    ``x_packed`` is the ``[T, K]`` concatenation of variable-length
    segments whose row boundaries are ``segment_offsets`` (monotone,
    ``offsets[0] == 0``, ``offsets[-1] == T`` — the prefix sums of
    :class:`~repro.core.padding.PackedSeqs`).  Because every segment
    shares the same weight ``w``, the per-segment products are row
    blocks of one ``T x N`` GEMM, and BLAS row-splits ``m`` (never
    ``k``), so the single call is bitwise identical to looping the
    segments — while paying one dispatch instead of ``num_segments``.

    Cost plane: delegates to :func:`repro.kernels.gemm.gemm` with the
    same name/category, so the launch descriptor — and therefore the
    captured graph and modelled µs — is exactly what the packed
    pipeline always priced.  The grouping is a host-scheduling win, not
    a cost-model change.
    """
    offs = np.asarray(segment_offsets, dtype=np.int64)
    if offs.ndim != 1 or offs.shape[0] < 2:
        raise ValueError(
            f"segment_offsets must hold >= 2 boundaries, got {offs.shape}"
        )
    if offs[0] != 0 or offs[-1] != x_packed.shape[0]:
        raise ValueError(
            f"segment_offsets {offs[0]}..{offs[-1]} do not cover the "
            f"{x_packed.shape[0]}-row packed buffer"
        )
    if np.any(np.diff(offs) < 0):
        raise ValueError("segment_offsets must be non-decreasing")
    return gemm(
        x_packed,
        w,
        bias=bias,
        activation=activation,
        gelu_variant=gelu_variant,
        ctx=ctx,
        name=name,
        category=category,
        out=out,
        tmp=tmp,
    )
