"""Softmax kernels over attention-score matrices.

Variants model the implementations compared in Figures 11/12:

* :func:`softmax` — one fused kernel over a 2-D view (read + write);
* :func:`masked_softmax` — the padded-batch kernel conventional frameworks
  launch: it touches the full ``seq_len x seq_len`` score matrix of every
  batch, padded positions included;
* :func:`zeropad_softmax` — the paper's zero-padding variant: it indexes
  the score tensor through the prefix-sum offsets and only reads/writes
  the ``len_i x len_i`` valid region of each batch, so its DRAM traffic
  scales with the *valid* token count;
* the multi-kernel eager sequence (scale, mask-add, then softmax) used by
  the PyTorch-style baseline is built from :func:`scale_scores`,
  :func:`add_mask` and :func:`softmax`.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.engine import is_vectorized
from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import tensor_bytes
from repro.gpusim.stream import ExecutionContext, resolve_context

#: large negative additive-mask value (matches fp16-safe practice)
MASK_VALUE = -1e4
_ROWS_PER_BLOCK = 8


def softmax_reference(x: np.ndarray) -> np.ndarray:
    """Numerically stable row softmax along the last axis."""
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def _softmax_launch(
    rows: int, cols: int, name: str, category: str, passes: float = 2.0
) -> KernelLaunch:
    grid = max(1, math.ceil(rows / _ROWS_PER_BLOCK))
    # exp + two reductions + scale: ~8 flops/element; the score-matrix
    # read is hot (the batched GEMM just produced it)
    return KernelLaunch(
        name=name,
        category=category,
        grid=grid,
        block_threads=256,
        flops=8.0 * rows * cols,
        dram_bytes=(passes - 1.0) * tensor_bytes(rows, cols),
        hot_bytes=tensor_bytes(rows, cols),
        compute_unit=ComputeUnit.FP32,
        compute_efficiency=0.5,
        regs_per_thread=48,
    )


def softmax_launch(
    rows: int, cols: int, category: str = "attention", name: str = "softmax"
) -> KernelLaunch:
    """Cost descriptor of the fused single-kernel softmax."""
    return _softmax_launch(rows, cols, name, category)


def scale_scores_launch(
    rows: int, cols: int, category: str = "attention"
) -> KernelLaunch:
    """Cost descriptor of the standalone score-scaling kernel."""
    return KernelLaunch(
        name="scale_scores",
        category=category,
        grid=max(1, math.ceil(rows / _ROWS_PER_BLOCK)),
        block_threads=256,
        flops=float(rows) * cols,
        dram_bytes=tensor_bytes(rows, cols),
        hot_bytes=tensor_bytes(rows, cols),
        compute_unit=ComputeUnit.FP16,
        compute_efficiency=0.5,
        regs_per_thread=24,
    )


def add_mask_launch(
    rows: int, cols: int, mask_elems: int, category: str = "attention"
) -> KernelLaunch:
    """Cost descriptor of the standalone additive-mask kernel."""
    return KernelLaunch(
        name="add_mask",
        category=category,
        grid=max(1, math.ceil(rows / _ROWS_PER_BLOCK)),
        block_threads=256,
        flops=2.0 * rows * cols,
        dram_bytes=tensor_bytes(rows, cols) + tensor_bytes(mask_elems),
        hot_bytes=tensor_bytes(rows, cols),
        compute_unit=ComputeUnit.FP16,
        compute_efficiency=0.5,
        regs_per_thread=24,
    )


def zeropad_softmax_launch(
    seq_lens: Sequence[int], heads: int, category: str = "attention"
) -> KernelLaunch:
    """Cost descriptor of the padding-free softmax for a length vector."""
    valid_rows = sum(heads * int(l) for l in seq_lens)
    valid_elems = sum(heads * int(l) * int(l) for l in seq_lens)
    return KernelLaunch(
        name="zeropad_softmax",
        category=category,
        grid=max(1, math.ceil(valid_rows / _ROWS_PER_BLOCK)),
        block_threads=256,
        flops=8.0 * valid_elems,
        dram_bytes=valid_elems * 2  # write pass, fp16
        + tensor_bytes(len(seq_lens)),  # offset vector
        hot_bytes=valid_elems * 2,  # hot read of the just-written scores
        compute_unit=ComputeUnit.FP32,
        compute_efficiency=0.5,
        regs_per_thread=48,
    )


def softmax(
    x: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> np.ndarray:
    """Fused single-kernel softmax over the last axis of ``x``."""
    rows = int(np.prod(x.shape[:-1]))
    cols = x.shape[-1]
    resolve_context(ctx).launch(softmax_launch(rows, cols, category))
    return softmax_reference(x)


def scale_scores(
    x: np.ndarray,
    scale: float,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> np.ndarray:
    """Standalone score-scaling kernel (eager PyTorch launches this)."""
    rows = int(np.prod(x.shape[:-1]))
    cols = x.shape[-1]
    resolve_context(ctx).launch(scale_scores_launch(rows, cols, category))
    return x * scale


def add_mask(
    x: np.ndarray,
    mask: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> np.ndarray:
    """Standalone additive-mask kernel.

    ``mask`` holds 1 for valid key positions and 0 for padding; invalid
    positions receive :data:`MASK_VALUE` before softmax.  Broadcasts over
    leading axes of ``x``.
    """
    rows = int(np.prod(x.shape[:-1]))
    cols = x.shape[-1]
    resolve_context(ctx).launch(
        add_mask_launch(rows, cols, int(np.prod(mask.shape)), category)
    )
    return x + (1.0 - mask) * MASK_VALUE


def masked_softmax(
    x: np.ndarray,
    mask: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> np.ndarray:
    """Fused masked softmax over the *padded* score tensor.

    One kernel, but it still streams the whole padded tensor, so its cost
    grows with ``seq_len**2`` regardless of the valid lengths.
    """
    rows = int(np.prod(x.shape[:-1]))
    cols = x.shape[-1]
    resolve_context(ctx).launch(
        softmax_launch(rows, cols, category, name="masked_softmax")
    )
    return softmax_reference(x + (1.0 - mask) * MASK_VALUE)


def zeropad_softmax(
    scores: np.ndarray,
    seq_lens: Sequence[int],
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> np.ndarray:
    """Padding-free softmax over a padded ``[B, H, S, S]`` score tensor.

    Only the ``len_b x len_b`` valid block of each batch is read,
    transformed and written; everything else is left untouched (zeroed in
    the output so downstream GEMMs see no garbage).  Traffic and FLOPs are
    summed over valid blocks only — this is the ``cuBLAS + zero padding``
    variant of Figures 11/12.
    """
    if scores.ndim != 4:
        raise ValueError(f"expected [B, H, S, S] scores, got {scores.shape}")
    batch, heads, max_len, max_len2 = scores.shape
    if max_len != max_len2:
        raise ValueError(f"score matrix must be square, got {scores.shape}")
    if len(seq_lens) != batch:
        raise ValueError(
            f"{len(seq_lens)} lengths for batch of {batch}"
        )

    out = np.zeros_like(scores)
    if is_vectorized():
        # batch same-length sentences: one stacked [B', H, l, l] softmax
        # per distinct length instead of one Python iteration per sentence
        from repro.attention.bucketed import (
            group_by_length,
            softmax_lastaxis_inplace,
        )

        lens = np.asarray(list(seq_lens), dtype=np.int64)
        bad = (lens <= 0) | (lens > max_len)
        if bad.any():
            first = int(lens[np.flatnonzero(bad)[0]])
            raise ValueError(
                f"sequence length {first} out of range (0, {max_len}]"
            )
        for length, idx in group_by_length(lens):
            block = scores[idx][:, :, :length, :length]
            out[idx, :, :length, :length] = softmax_lastaxis_inplace(block)
    else:
        for b, length in enumerate(seq_lens):
            if not (0 < length <= max_len):
                raise ValueError(
                    f"sequence length {length} out of range (0, {max_len}]"
                )
            block = scores[b, :, :length, :length]
            out[b, :, :length, :length] = softmax_reference(block)

    resolve_context(ctx).launch(
        zeropad_softmax_launch(list(seq_lens), heads, category)
    )
    return out
