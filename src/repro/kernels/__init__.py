"""Numerical GPU kernels with paired cost descriptors.

Every function in this package computes its result with NumPy *and*
records a :class:`repro.gpusim.KernelLaunch` into the active
:class:`repro.gpusim.ExecutionContext` (explicit ``ctx=`` argument, the
ambient :func:`repro.gpusim.use_context` context, or a no-op null context
when neither is present).
"""

from repro.kernels.activation import (
    add_bias,
    add_bias_gelu,
    gelu,
    gelu_reference,
    gelu_tanh,
)
from repro.kernels.batched_gemm import batched_gemm, batched_gemm_launch
from repro.kernels.gemm import (
    gemm,
    gemm_efficiency,
    gemm_flops,
    gemm_launch,
    select_tile,
)
from repro.kernels.grouped_gemm import (
    GemmProblem,
    GroupedSchedule,
    SchedulerKind,
    grouped_gemm,
    grouped_gemm_launch,
    simulate_schedule,
)
from repro.kernels.layernorm import (
    add_bias_residual,
    add_bias_residual_layernorm,
    add_bias_residual_layernorm_unfused,
    layernorm,
    layernorm_reference,
)
from repro.kernels.packing import pack_tokens, unpack_tokens
from repro.kernels.prefix_sum import (
    mask_prefix_sum,
    warp_inclusive_scan,
    warp_scan_sequence,
)
from repro.kernels.reduction import (
    apply_softmax_transform,
    full_reduce_stats,
    full_reduction_kernel,
    partial_softmax_stats,
)
from repro.kernels.softmax import (
    add_mask,
    masked_softmax,
    scale_scores,
    softmax,
    softmax_reference,
    zeropad_softmax,
)
from repro.kernels.transpose import (
    add_bias_split_heads_packed_qkv,
    add_bias_split_heads_qkv,
    add_bias_unpack_split_heads_qkv,
    merge_heads,
    pack_merge_heads,
    split_heads,
)

__all__ = [
    "add_bias",
    "add_bias_gelu",
    "gelu",
    "gelu_reference",
    "gelu_tanh",
    "batched_gemm",
    "batched_gemm_launch",
    "gemm",
    "gemm_efficiency",
    "gemm_flops",
    "gemm_launch",
    "select_tile",
    "GemmProblem",
    "GroupedSchedule",
    "SchedulerKind",
    "grouped_gemm",
    "grouped_gemm_launch",
    "simulate_schedule",
    "add_bias_residual",
    "add_bias_residual_layernorm",
    "add_bias_residual_layernorm_unfused",
    "layernorm",
    "layernorm_reference",
    "pack_tokens",
    "unpack_tokens",
    "mask_prefix_sum",
    "warp_inclusive_scan",
    "warp_scan_sequence",
    "apply_softmax_transform",
    "full_reduce_stats",
    "full_reduction_kernel",
    "partial_softmax_stats",
    "add_mask",
    "masked_softmax",
    "scale_scores",
    "softmax",
    "softmax_reference",
    "zeropad_softmax",
    "add_bias_split_heads_packed_qkv",
    "add_bias_split_heads_qkv",
    "add_bias_unpack_split_heads_qkv",
    "merge_heads",
    "pack_merge_heads",
    "split_heads",
]
