"""Element-wise activation kernels: GELU and add-bias variants.

Two execution styles are provided, matching the paper's §III-C.2
comparison:

* :func:`add_bias_gelu` — the standalone kernel an *unfused* pipeline
  launches after a GEMM: it reads the GEMM output back from DRAM, adds the
  bias, applies GELU and writes the result (two full passes over the
  tensor plus the bias vector);
* fusion into the GEMM epilogue is expressed by calling
  :func:`repro.kernels.gemm.gemm` with ``bias=...`` and
  ``activation="gelu"`` — no standalone kernel, no extra tensor traffic.

GELU variants
-------------
Two host formulas compute the activation; **both price as the same
kernel** — variant selection is a numeric-plane concern only, so the
launch stream and modelled µs are unchanged by it:

* ``"exact"`` — ``x * Phi(x)`` via ``scipy.special.erf`` (the default,
  bitwise-stable reference);
* ``"tanh"`` — the tanh approximation BERT implementations ship, about
  an order of magnitude cheaper on the host than erf; its worst-case
  error against exact GELU is :data:`FAST_GELU_ATOL` (the documented
  tolerance the ``fast-gelu`` preset is bench-gated against).

:func:`force_gelu_variant` mirrors
:func:`repro.attention.dispatch.force_mha_path`: the degradation ladder
pins conservative rungs to ``"exact"`` regardless of the preset.
"""

from __future__ import annotations

import contextlib
import math
from typing import Iterator

import numpy as np
from scipy.special import erf

from repro.core.memory_planner import KERNEL_SCRATCH
from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import tensor_bytes
from repro.gpusim.stream import ExecutionContext, resolve_context

#: rows of the (rows x hidden) tensor processed per thread block
_ROWS_PER_BLOCK = 4

#: the host GELU formulas a preset may select
GELU_VARIANTS = ("exact", "tanh")

#: documented worst-case |tanh-GELU - exact-GELU| over the reals for
#: ONE application; the maximum of the error curve sits near |x| ~ 2
#: and is independent of scale, so this bounds the per-element error of
#: any activation tensor.  Through a full model the error compounds at
#: most linearly in depth (one GELU per layer, layernorm renormalises
#: between layers), so the end-to-end bound the bench gates against is
#: ``num_layers * FAST_GELU_ATOL``.
FAST_GELU_ATOL = 5e-4

_forced_variant: list[str] = []


def forced_gelu_variant() -> str | None:
    """The innermost forced GELU variant, or ``None``."""
    return _forced_variant[-1] if _forced_variant else None


@contextlib.contextmanager
def force_gelu_variant(variant: str) -> Iterator[None]:
    """Pin the GELU formula within the ``with`` block.

    The degradation ladder uses this to hold conservative rungs on the
    exact formula even when the serving preset is ``fast-gelu`` —
    mirroring :func:`repro.attention.dispatch.force_mha_path`.
    """
    if variant not in GELU_VARIANTS:
        raise ValueError(
            f"unknown GELU variant {variant!r}; pick one of {GELU_VARIANTS}"
        )
    _forced_variant.append(variant)
    try:
        yield
    finally:
        _forced_variant.pop()


def resolve_gelu_variant(variant: str) -> str:
    """``variant`` unless a :func:`force_gelu_variant` block overrides it."""
    if variant not in GELU_VARIANTS:
        raise ValueError(
            f"unknown GELU variant {variant!r}; pick one of {GELU_VARIANTS}"
        )
    forced = forced_gelu_variant()
    return forced if forced is not None else variant


def gelu_reference(x: np.ndarray) -> np.ndarray:
    """Exact GELU: ``x * Phi(x)`` with the Gaussian CDF."""
    return 0.5 * x * (1.0 + erf(x / math.sqrt(2.0)))


def gelu_into(
    x: np.ndarray, *, out: np.ndarray, tmp: np.ndarray
) -> np.ndarray:
    """:func:`gelu_reference` into caller-provided storage, bit for bit.

    Runs the reference expression as the same ufunc sequence with ``out=``
    targets, so no intermediate is allocated and the result is bitwise
    identical (``x * 0.5`` commutes exactly with ``0.5 * x`` under IEEE
    754).  ``out`` may alias ``x``; ``tmp`` must not alias either and
    must match ``x``'s shape.
    """
    np.divide(x, math.sqrt(2.0), out=tmp)
    erf(tmp, out=tmp)
    np.add(tmp, 1.0, out=tmp)
    np.multiply(x, 0.5, out=out)
    np.multiply(out, tmp, out=out)
    return out


def gelu_tanh(x: np.ndarray) -> np.ndarray:
    """The tanh approximation of GELU used by BERT implementations.

    The cube is ``(x*x)*x`` rather than ``x**3``: ``np.power`` rounds
    differently in the last bit, and :func:`gelu_tanh_into` must be able
    to replay this expression bitwise from plain multiplies.
    """
    c = math.sqrt(2.0 / math.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * ((x * x) * x))))


def gelu_tanh_into(
    x: np.ndarray, *, out: np.ndarray, tmp: np.ndarray
) -> np.ndarray:
    """:func:`gelu_tanh` into caller-provided storage, bit for bit.

    The same ufunc sequence with ``out=`` targets — including the
    ``(x*x)*x`` cube — so the two forms agree bitwise.  ``out`` may
    alias ``x``; ``tmp`` must not alias either and must match ``x``'s
    shape.
    """
    c = math.sqrt(2.0 / math.pi)
    np.multiply(x, x, out=tmp)
    np.multiply(tmp, x, out=tmp)
    np.multiply(tmp, 0.044715, out=tmp)
    np.add(x, tmp, out=tmp)
    np.multiply(tmp, c, out=tmp)
    np.tanh(tmp, out=tmp)
    np.add(tmp, 1.0, out=tmp)
    np.multiply(x, 0.5, out=out)
    np.multiply(out, tmp, out=out)
    return out


def apply_gelu(
    x: np.ndarray,
    *,
    out: np.ndarray,
    tmp: np.ndarray,
    variant: str = "exact",
) -> np.ndarray:
    """Dispatch to the in-place formula for ``variant`` (post-forcing)."""
    v = resolve_gelu_variant(variant)
    into = gelu_into if v == "exact" else gelu_tanh_into
    return into(x, out=out, tmp=tmp)


def _elementwise_launch(
    rows: int, cols: int, name: str, category: str, passes: float, flops_per_elem: float
) -> KernelLaunch:
    grid = max(1, math.ceil(rows / _ROWS_PER_BLOCK))
    # the input read is *hot*: it follows the kernel that produced it
    return KernelLaunch(
        name=name,
        category=category,
        grid=grid,
        block_threads=256,
        flops=flops_per_elem * rows * cols,
        dram_bytes=(passes - 1.0) * tensor_bytes(rows, cols)
        + tensor_bytes(cols),
        hot_bytes=tensor_bytes(rows, cols),
        compute_unit=ComputeUnit.FP16,
        compute_efficiency=0.5,
        regs_per_thread=32,
    )


def add_bias_launch(rows: int, cols: int, category: str = "activation") -> KernelLaunch:
    """Cost descriptor of the standalone add-bias kernel."""
    return _elementwise_launch(rows, cols, "add_bias", category, 2.0, 1.0)


def gelu_launch(rows: int, cols: int, category: str = "activation") -> KernelLaunch:
    """Cost descriptor of the standalone GELU kernel."""
    return _elementwise_launch(rows, cols, "gelu", category, 2.0, 8.0)


def add_bias_gelu_launch(
    rows: int, cols: int, category: str = "activation"
) -> KernelLaunch:
    """Cost descriptor of the fused-elementwise add-bias + GELU kernel."""
    return _elementwise_launch(rows, cols, "add_bias_gelu", category, 2.0, 9.0)


def add_bias(
    x: np.ndarray,
    bias: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "activation",
) -> np.ndarray:
    """Standalone add-bias kernel: read tensor, add bias vector, write."""
    if x.ndim != 2:
        raise ValueError(f"add_bias expects a 2-D tensor, got {x.shape}")
    if bias.shape != (x.shape[1],):
        raise ValueError(f"bias shape {bias.shape} != ({x.shape[1]},)")
    rows, cols = x.shape
    resolve_context(ctx).launch(
        add_bias_launch(rows, cols, category)
    )
    return x + bias


def gelu(
    x: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "activation",
) -> np.ndarray:
    """Standalone GELU kernel: read tensor, transform, write."""
    if x.ndim != 2:
        raise ValueError(f"gelu expects a 2-D tensor, got {x.shape}")
    rows, cols = x.shape
    resolve_context(ctx).launch(
        gelu_launch(rows, cols, category)
    )
    return gelu_reference(x)


def add_bias_gelu(
    x: np.ndarray,
    bias: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "activation",
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
    variant: str = "exact",
) -> np.ndarray:
    """Fused-elementwise (but not GEMM-fused) add-bias + GELU kernel.

    One read and one write of the tensor.  This is what a framework with
    element-wise fusion (e.g. XLA, JIT) launches after an unfused GEMM.
    When ``out``/``tmp`` are given (both or neither) the result lands in
    ``out`` with zero tensor allocations, bit-identical to the allocating
    path; ``out`` may alias ``x``.  Without ``out``, only the result
    tensor is allocated — the erf/tanh temporary comes from the pooled
    :data:`~repro.core.memory_planner.KERNEL_SCRATCH`.  ``variant``
    selects the host formula; the launch descriptor is the same either
    way (see module docstring).
    """
    if x.ndim != 2:
        raise ValueError(f"add_bias_gelu expects a 2-D tensor, got {x.shape}")
    if bias.shape != (x.shape[1],):
        raise ValueError(f"bias shape {bias.shape} != ({x.shape[1]},)")
    rows, cols = x.shape
    resolve_context(ctx).launch(
        add_bias_gelu_launch(rows, cols, category)
    )
    if out is None:
        out = x + bias
        tmp = KERNEL_SCRATCH.take(out.shape, out.dtype)
    elif tmp is None:
        raise ValueError("out= requires a tmp= buffer of the same shape")
    else:
        np.add(x, bias, out=out)
    return apply_gelu(out, out=out, tmp=tmp, variant=variant)
