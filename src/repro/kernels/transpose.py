"""Head split/merge (transpose) kernels, with fused bias and pack/unpack.

BERT reshapes activations between the ``[rows, hidden]`` layout GEMMs want
and the ``[B, heads, S, head_size]`` layout batched attention wants.
Conventional frameworks launch plain transpose kernels; ByteTransformer
fuses the QKV bias add and the pack/unpack of the zero-padding algorithm
into these same memory footprints so the packing feature costs ~nothing
extra (§III-D, last paragraph).
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import BYTES_PER_FP32, tensor_bytes
from repro.gpusim.stream import ExecutionContext, resolve_context

_ROWS_PER_BLOCK = 4


def _move_launch(
    name: str,
    category: str,
    rows_driving_grid: int,
    dram_bytes: float,
    flops: float = 0.0,
    hot_bytes: float = 0.0,
) -> KernelLaunch:
    grid = max(1, math.ceil(rows_driving_grid / _ROWS_PER_BLOCK))
    return KernelLaunch(
        name=name,
        category=category,
        grid=grid,
        block_threads=256,
        flops=flops,
        dram_bytes=dram_bytes,
        hot_bytes=hot_bytes,
        compute_unit=ComputeUnit.FP16,
        compute_efficiency=0.5,
        regs_per_thread=32,
    )


def split_heads_launch(
    rows: int, hidden: int, category: str = "attention",
    name: str = "split_heads",
) -> KernelLaunch:
    """Cost descriptor of one head split/merge transpose copy."""
    return _move_launch(
        name, category, rows, tensor_bytes(rows, hidden),
        hot_bytes=tensor_bytes(rows, hidden),
    )


def add_bias_split_heads_qkv_launch(
    rows: int, three_hidden: int, category: str = "attention"
) -> KernelLaunch:
    """Cost descriptor of the fused bias + QKV head-split kernel."""
    return _move_launch(
        "add_bias_split_heads_qkv",
        category,
        rows,
        tensor_bytes(rows, three_hidden) + tensor_bytes(three_hidden),
        flops=float(rows) * three_hidden,
        hot_bytes=tensor_bytes(rows, three_hidden),
    )


def add_bias_unpack_split_heads_qkv_launch(
    tokens: int, padded_rows: int, three_hidden: int,
    category: str = "attention",
) -> KernelLaunch:
    """Cost descriptor of the fused unpack + bias + QKV head-split kernel."""
    return _move_launch(
        "add_bias_unpack_split_heads_qkv",
        category,
        padded_rows,
        tensor_bytes(padded_rows, three_hidden)
        + tensor_bytes(three_hidden)
        + tokens * BYTES_PER_FP32,
        flops=float(tokens) * three_hidden,
        hot_bytes=tensor_bytes(tokens, three_hidden),
    )


def add_bias_split_heads_packed_qkv_launch(
    tokens: int, three_hidden: int, category: str = "attention"
) -> KernelLaunch:
    """Cost descriptor of the packed bias + QKV head-split kernel."""
    return _move_launch(
        "add_bias_split_heads_packed_qkv",
        category,
        tokens,
        tensor_bytes(tokens, three_hidden) + tensor_bytes(three_hidden),
        flops=float(tokens) * three_hidden,
        hot_bytes=tensor_bytes(tokens, three_hidden),
    )


def pack_merge_heads_launch(
    tokens: int, hidden: int, category: str = "attention"
) -> KernelLaunch:
    """Cost descriptor of the fused pack + head-merge kernel."""
    return _move_launch(
        "pack_merge_heads",
        category,
        tokens,
        tensor_bytes(tokens, hidden) + tokens * BYTES_PER_FP32,
        hot_bytes=tensor_bytes(tokens, hidden),
    )


def split_heads(
    x: np.ndarray,
    batch: int,
    seq_len: int,
    num_heads: int,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
    name: str = "split_heads",
) -> np.ndarray:
    """``[B*S, H]`` → ``[B, heads, S, head_size]`` (one transpose kernel)."""
    rows, hidden = x.shape
    if rows != batch * seq_len:
        raise ValueError(f"{rows} rows != batch {batch} * seq {seq_len}")
    if hidden % num_heads != 0:
        raise ValueError(f"hidden {hidden} not divisible by {num_heads} heads")
    head_size = hidden // num_heads
    resolve_context(ctx).launch(
        split_heads_launch(rows, hidden, category, name)
    )
    return (
        x.reshape(batch, seq_len, num_heads, head_size)
        .transpose(0, 2, 1, 3)
        .copy()
    )


def merge_heads(
    x: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
    name: str = "merge_heads",
) -> np.ndarray:
    """``[B, heads, S, head_size]`` → ``[B*S, H]`` (one transpose kernel)."""
    if x.ndim != 4:
        raise ValueError(f"expected [B, heads, S, hs], got {x.shape}")
    batch, heads, seq_len, head_size = x.shape
    rows = batch * seq_len
    hidden = heads * head_size
    resolve_context(ctx).launch(
        split_heads_launch(rows, hidden, category, name)
    )
    return x.transpose(0, 2, 1, 3).reshape(rows, hidden).copy()


def add_bias_split_heads_qkv(
    qkv: np.ndarray,
    qkv_bias: np.ndarray,
    batch: int,
    seq_len: int,
    num_heads: int,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused bias-add + QKV head split on a *padded* ``[B*S, 3H]`` tensor.

    Returns Q, K, V each shaped ``[B, heads, S, head_size]``.  One kernel:
    read the fused QKV tensor and the bias, write the three outputs.
    """
    rows, three_hidden = qkv.shape
    if rows != batch * seq_len:
        raise ValueError(f"{rows} rows != batch {batch} * seq {seq_len}")
    if three_hidden % 3 != 0:
        raise ValueError(f"QKV width {three_hidden} not divisible by 3")
    if qkv_bias.shape != (three_hidden,):
        raise ValueError(f"bias shape {qkv_bias.shape} != ({three_hidden},)")
    hidden = three_hidden // 3
    if hidden % num_heads != 0:
        raise ValueError(f"hidden {hidden} not divisible by {num_heads} heads")
    head_size = hidden // num_heads

    resolve_context(ctx).launch(
        add_bias_split_heads_qkv_launch(rows, three_hidden, category)
    )
    biased = qkv + qkv_bias
    parts = []
    for i in range(3):
        part = biased[:, i * hidden : (i + 1) * hidden]
        parts.append(
            part.reshape(batch, seq_len, num_heads, head_size)
            .transpose(0, 2, 1, 3)
            .copy()
        )
    return parts[0], parts[1], parts[2]


def add_bias_unpack_split_heads_qkv(
    qkv_packed: np.ndarray,
    qkv_bias: np.ndarray,
    gather_idx: np.ndarray,
    batch: int,
    seq_len: int,
    num_heads: int,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused *unpack* + bias-add + head split: ``[T, 3H]`` → padded Q, K, V.

    This is the pipeline-(c) kernel that re-pads before batched-GEMM MHA:
    it reads only the packed tensor (``T`` rows) but must write the padded
    outputs (``B*S`` rows, zero-filled), in a single launch — the unpack
    cost is hidden inside a footprint that had to exist anyway.
    """
    tokens, three_hidden = qkv_packed.shape
    if gather_idx.shape != (tokens,):
        raise ValueError(
            f"gather_idx shape {gather_idx.shape} != ({tokens},)"
        )
    if three_hidden % 3 != 0:
        raise ValueError(f"QKV width {three_hidden} not divisible by 3")
    if qkv_bias.shape != (three_hidden,):
        raise ValueError(f"bias shape {qkv_bias.shape} != ({three_hidden},)")
    hidden = three_hidden // 3
    if hidden % num_heads != 0:
        raise ValueError(f"hidden {hidden} not divisible by {num_heads} heads")
    head_size = hidden // num_heads
    padded_rows = batch * seq_len

    resolve_context(ctx).launch(
        add_bias_unpack_split_heads_qkv_launch(
            tokens, padded_rows, three_hidden, category
        )
    )
    padded = np.zeros((padded_rows, three_hidden), dtype=qkv_packed.dtype)
    padded[gather_idx] = qkv_packed + qkv_bias
    parts = []
    for i in range(3):
        part = padded[:, i * hidden : (i + 1) * hidden]
        parts.append(
            part.reshape(batch, seq_len, num_heads, head_size)
            .transpose(0, 2, 1, 3)
            .copy()
        )
    return parts[0], parts[1], parts[2]


def add_bias_split_heads_packed_qkv(
    qkv_packed: np.ndarray,
    qkv_bias: np.ndarray,
    num_heads: int,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused bias-add + head split that *stays packed*: ``[T, 3H]`` → 3×``[T, heads, head_size]``.

    Used by the fused-MHA pipelines: attention reads packed Q/K/V directly
    through the position offsets, so nothing is ever re-padded and traffic
    scales with the valid token count only.
    """
    tokens, three_hidden = qkv_packed.shape
    if three_hidden % 3 != 0:
        raise ValueError(f"QKV width {three_hidden} not divisible by 3")
    if qkv_bias.shape != (three_hidden,):
        raise ValueError(f"bias shape {qkv_bias.shape} != ({three_hidden},)")
    hidden = three_hidden // 3
    if hidden % num_heads != 0:
        raise ValueError(f"hidden {hidden} not divisible by {num_heads} heads")
    head_size = hidden // num_heads

    resolve_context(ctx).launch(
        add_bias_split_heads_packed_qkv_launch(tokens, three_hidden, category)
    )
    biased = qkv_packed + qkv_bias
    parts = []
    for i in range(3):
        part = biased[:, i * hidden : (i + 1) * hidden]
        parts.append(part.reshape(tokens, num_heads, head_size).copy())
    return parts[0], parts[1], parts[2]


def pack_merge_heads(
    attn_out: np.ndarray,
    gather_idx: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> np.ndarray:
    """Fused *pack* + head merge: padded ``[B, heads, S, hs]`` → ``[T, H]``.

    The pipeline-(c) kernel that re-packs after batched-GEMM MHA; it reads
    only the valid rows and writes the packed tensor.
    """
    if attn_out.ndim != 4:
        raise ValueError(f"expected [B, heads, S, hs], got {attn_out.shape}")
    batch, heads, seq_len, head_size = attn_out.shape
    hidden = heads * head_size
    tokens = gather_idx.shape[0]

    resolve_context(ctx).launch(
        pack_merge_heads_launch(tokens, hidden, category)
    )
    merged = attn_out.transpose(0, 2, 1, 3).reshape(batch * seq_len, hidden)
    return merged[gather_idx].copy()
