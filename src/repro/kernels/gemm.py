"""Dense GEMM with optional fused epilogue.

Mirrors the role cuBLAS/CUTLASS play in the paper: a tensor-core GEMM whose
epilogue can apply add-bias and GELU *without* a round-trip through DRAM
(§III-C.2).  The cost model follows CUTLASS's CTA-tile structure: the grid
is the number of output tiles, sustained tensor-core efficiency degrades
for shallow ``k`` and for tile-quantisation waste, and DRAM traffic counts
each operand streamed once (good L2 reuse is assumed for these shapes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.memory_planner import KERNEL_SCRATCH
from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import BYTES_PER_ELEMENT, tensor_bytes
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.activation import apply_gelu

#: sustained fraction of tensor-core peak for a large, well-shaped GEMM
BASE_TC_EFFICIENCY = 0.78
#: ``k`` ramp constant: eff multiplier is k / (k + K_RAMP)
K_RAMP = 48.0


@dataclass(frozen=True)
class TileConfig:
    """CTA tile selection for a GEMM problem."""

    tile_m: int
    tile_n: int
    block_threads: int
    smem_bytes: int
    regs_per_thread: int


def select_tile(m: int, n: int) -> TileConfig:
    """Pick a CUTLASS-like CTA tile for an ``m x n`` output.

    Large outputs use 128x128 tiles (256 threads); smaller outputs fall
    back to 64x64 tiles so short sequences still fill the device.
    """
    if m >= 128 and n >= 128:
        # double-buffered 128x128x32 FP16 tiles
        return TileConfig(128, 128, 256, 2 * (128 + 128) * 32 * 2, 128)
    if m >= 64 and n >= 64:
        return TileConfig(64, 64, 128, 2 * (64 + 64) * 32 * 2, 96)
    return TileConfig(32, 32, 64, 2 * (32 + 32) * 32 * 2, 64)


def gemm_efficiency(m: int, n: int, k: int, tile: TileConfig) -> float:
    """Sustained tensor-core efficiency for an ``m x n x k`` GEMM.

    Three effects: a base achievable fraction, a ramp in the reduction
    depth ``k`` (mainloop prologue/epilogue amortisation), and tile
    quantisation (padded tile area does no useful work).
    """
    if min(m, n, k) <= 0:
        raise ValueError(f"GEMM dims must be positive, got {(m, n, k)}")
    k_ramp = k / (k + K_RAMP)
    tiles_m = math.ceil(m / tile.tile_m)
    tiles_n = math.ceil(n / tile.tile_n)
    useful = m * n
    computed = tiles_m * tile.tile_m * tiles_n * tile.tile_n
    quantisation = useful / computed
    return BASE_TC_EFFICIENCY * k_ramp * quantisation


def gemm_launch(
    m: int,
    n: int,
    k: int,
    *,
    name: str = "gemm",
    category: str = "gemm",
    epilogue_bytes: float = 0.0,
    extra_overhead_us: float = 0.0,
) -> KernelLaunch:
    """Cost descriptor for one ``m x n x k`` GEMM (+ fused epilogue traffic)."""
    tile = select_tile(m, n)
    grid = math.ceil(m / tile.tile_m) * math.ceil(n / tile.tile_n)
    bytes_moved = (
        tensor_bytes(m, k) + tensor_bytes(k, n) + tensor_bytes(m, n)
    ) + epilogue_bytes
    return KernelLaunch(
        name=name,
        category=category,
        grid=grid,
        block_threads=tile.block_threads,
        flops=2.0 * m * n * k,
        dram_bytes=bytes_moved,
        compute_unit=ComputeUnit.TENSOR_FP16,
        compute_efficiency=gemm_efficiency(m, n, k, tile),
        shared_mem_per_block=tile.smem_bytes,
        regs_per_thread=tile.regs_per_thread,
        extra_overhead_us=extra_overhead_us,
    )


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    bias: np.ndarray | None = None,
    activation: str | None = None,
    ctx: ExecutionContext | None = None,
    name: str = "gemm",
    category: str = "gemm",
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
    gelu_variant: str = "exact",
) -> np.ndarray:
    """Compute ``a @ b`` with an optional fused bias/activation epilogue.

    ``activation`` may be ``None`` or ``"gelu"``.  When bias/activation are
    given they execute in the epilogue: the only extra DRAM traffic is the
    bias vector read — the result tensor is transformed in registers before
    its single store, exactly the fusion of §III-C.2.

    ``out`` routes the product (and epilogue) into caller storage with
    zero tensor allocations and bit-identical values — ``np.matmul`` with
    ``out=`` issues the same BLAS call.  A GELU epilogue additionally
    needs ``tmp`` (same shape as ``out``, no aliasing); without ``out``
    the epilogue temporary comes from the pooled
    :data:`~repro.core.memory_planner.KERNEL_SCRATCH`, so the allocating
    form still performs exactly one tensor allocation.  ``gelu_variant``
    picks the host formula (``"exact"``/``"tanh"``); the launch
    descriptor and modelled time are identical for both.
    """
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"gemm expects 2-D operands, got {a.shape} and {b.shape}"
        )
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dims mismatch: {a.shape} @ {b.shape}")
    m, k = a.shape
    n = b.shape[1]

    epilogue_bytes = 0.0
    if bias is not None and bias.shape != (n,):
        raise ValueError(f"bias shape {bias.shape} != ({n},)")
    if activation not in (None, "gelu"):
        raise ValueError(f"unsupported activation {activation!r}")
    # BLAS dispatches an M=1 matmul to its gemv kernel, whose reduction
    # order differs from the row results every M >= 2 operand gets from
    # the gemm kernel — breaking the row-wise bitwise contract packed
    # tiles and the per-request oracle rely on (a 1-token sequence
    # through `forward` must match its row inside a packed megabatch).
    # Duplicate the row so BLAS stays on the gemm path and keep row 0;
    # the launch descriptor below still prices the real m=1 problem.
    if out is None:
        out = (np.concatenate([a, a], axis=0) @ b)[:1] if m == 1 else a @ b
        if bias is not None:
            out = out + bias
        if activation == "gelu":
            apply_gelu(
                out,
                out=out,
                tmp=KERNEL_SCRATCH.take(out.shape, out.dtype),
                variant=gelu_variant,
            )
    else:
        if m == 1:
            np.copyto(out, (np.concatenate([a, a], axis=0) @ b)[:1])
        else:
            np.matmul(a, b, out=out)
        if bias is not None:
            np.add(out, bias, out=out)
        if activation == "gelu":
            if tmp is None:
                raise ValueError(
                    "gelu epilogue with out= requires a tmp= buffer"
                )
            apply_gelu(out, out=out, tmp=tmp, variant=gelu_variant)
    if bias is not None:
        epilogue_bytes += tensor_bytes(n)

    resolve_context(ctx).launch(
        gemm_launch(
            m,
            n,
            k,
            name=name,
            category=category,
            epilogue_bytes=epilogue_bytes,
        )
    )
    return out


def gemm_flops(m: int, n: int, k: int) -> float:
    """Useful FLOPs of an ``m x n x k`` GEMM (multiply + add)."""
    return 2.0 * m * n * k


def output_store_bytes(m: int, n: int) -> float:
    """DRAM bytes to store an ``m x n`` result once (FP16)."""
    return float(m) * n * BYTES_PER_ELEMENT
