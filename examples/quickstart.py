"""Quickstart: run a variable-length batch through ByteTransformer.

Builds a 12-layer BERT-base encoder, feeds it a variable-length batch
(average length 0.6 x max, the paper's setting), checks the optimised
pipeline against the plain NumPy oracle, and prints the modelled A100
latency with and without the paper's optimisations.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BASELINE, FUSED_MHA, BertConfig, BertEncoderModel, make_batch
from repro.core.reference import reference_encoder
from repro.core.weights import init_model_weights
from repro.gpusim import ExecutionContext, ProfileReport


def main() -> None:
    # keep the numeric demo snappy: 2 layers, BERT-base width
    config = BertConfig(num_layers=2)
    weights = init_model_weights(config, seed=0)
    batch = make_batch(
        batch=8, max_seq_len=128, hidden=config.hidden_size,
        alpha=0.6, seed=42,
    )
    print(
        f"batch of {batch.batch}, max_seq_len {batch.max_seq_len}, "
        f"valid lengths {batch.seq_lens.tolist()} "
        f"(fill ratio {batch.alpha:.2f})"
    )

    # --- the optimised engine: zero padding + fused MHA + kernel fusion ---
    engine = BertEncoderModel(config, FUSED_MHA, weights=weights)
    ctx = ExecutionContext()
    out = engine.forward(batch.x, batch.mask, ctx=ctx)
    print(f"\nByteTransformer: {ctx.elapsed_us():8.1f} us modelled on "
          f"{ctx.device.name} ({ctx.kernel_count()} kernel launches)")

    # --- the padded baseline (Figure 2 (a)) on the same weights ---
    baseline = BertEncoderModel(config, BASELINE, weights=weights)
    ctx_base = ExecutionContext()
    out_base = baseline.forward(batch.x, batch.mask, ctx=ctx_base)
    print(f"padded baseline: {ctx_base.elapsed_us():8.1f} us "
          f"({ctx_base.kernel_count()} kernel launches)")
    print(f"speedup: +{ctx_base.elapsed_us() / ctx.elapsed_us() - 1:.0%}")

    # --- numerical correctness against the plain NumPy oracle ---
    oracle = reference_encoder(batch.x, weights, config, batch.mask)
    valid = batch.mask.astype(bool)
    err_opt = np.abs(out[valid] - oracle[valid]).max()
    err_base = np.abs(out_base[valid] - oracle[valid]).max()
    print(f"\nmax |error| vs oracle: optimised {err_opt:.2e}, "
          f"baseline {err_base:.2e}")
    assert err_opt < 1e-3 and err_base < 1e-3

    # --- where the time goes (the Figure 3 view) ---
    print("\n" + ProfileReport.from_context(ctx).to_table("ByteTransformer"))


if __name__ == "__main__":
    main()
