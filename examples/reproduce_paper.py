"""Regenerate every table and figure of the paper in one run.

Prints Table I, Figure 3's breakdown, Figures 9-14 and the §III-E.2
ablations with paper-vs-measured comparison lines — the data behind
EXPERIMENTS.md.

Run:  python examples/reproduce_paper.py          # everything (~1 min)
      python examples/reproduce_paper.py fig13    # a single experiment
"""

from __future__ import annotations

import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main() -> None:
    requested = sys.argv[1:] or list(ALL_EXPERIMENTS)
    unknown = [name for name in requested if name not in ALL_EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiment(s) {unknown}; "
            f"choose from {sorted(ALL_EXPERIMENTS)}"
        )
    for name in requested:
        module = ALL_EXPERIMENTS[name]
        start = time.perf_counter()
        print(f"\n{'=' * 72}\n[{name}] {module.__doc__.splitlines()[0]}")
        print("=" * 72)
        module.main()
        print(f"[{name}] done in {time.perf_counter() - start:.1f}s")


if __name__ == "__main__":
    main()
