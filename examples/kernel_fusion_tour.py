"""A tour of the paper's kernel fusions, one at a time.

Walks through §III-C and §III-D on real tensors: for each fusion it runs
the unfused and fused variants numerically (asserting bit-for-bit-ish
equivalence) and prints the modelled traffic and latency the fusion
saves — the same story as Figures 9, 10 and the pack/unpack discussion.

Run:  python examples/kernel_fusion_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import ExecutionContext
from repro.kernels import (
    add_bias_gelu,
    add_bias_residual_layernorm,
    add_bias_residual_layernorm_unfused,
    gemm,
)
from repro.kernels.packing import pack_tokens, unpack_tokens
from repro.kernels.transpose import add_bias_unpack_split_heads_qkv

ROWS, HIDDEN = 2048, 768


def report(title, unfused_ctx, fused_ctx):
    saved_bytes = (
        unfused_ctx.total_dram_bytes() - fused_ctx.total_dram_bytes()
    )
    gain = unfused_ctx.elapsed_us() / fused_ctx.elapsed_us() - 1
    print(
        f"{title:<38} unfused {unfused_ctx.elapsed_us():7.1f} us "
        f"({unfused_ctx.kernel_count()} kernels)  "
        f"fused {fused_ctx.elapsed_us():7.1f} us "
        f"({fused_ctx.kernel_count()} kernel)  "
        f"gain +{gain:.0%}  DRAM saved {saved_bytes / 1e6:6.1f} MB"
    )


def main() -> None:
    rng = np.random.default_rng(0)
    x = rng.normal(size=(ROWS, HIDDEN)).astype(np.float32)
    residual = rng.normal(size=(ROWS, HIDDEN)).astype(np.float32)
    bias = rng.normal(size=HIDDEN).astype(np.float32)
    gamma = np.ones(HIDDEN, dtype=np.float32)
    beta = np.zeros(HIDDEN, dtype=np.float32)

    # --- 1. add-bias + residual + layernorm (Figure 9) ---
    unfused = ExecutionContext()
    a = add_bias_residual_layernorm_unfused(
        x, bias, residual, gamma, beta, ctx=unfused
    )
    fused = ExecutionContext()
    b = add_bias_residual_layernorm(x, bias, residual, gamma, beta, ctx=fused)
    np.testing.assert_allclose(a, b, rtol=1e-5)
    report("add-bias + layernorm (Fig 9)", unfused, fused)

    # --- 2. GEMM + add-bias + GELU epilogue (Figure 10) ---
    w = rng.normal(size=(HIDDEN, 4 * HIDDEN)).astype(np.float32) * 0.02
    ffn_bias = rng.normal(size=4 * HIDDEN).astype(np.float32)
    unfused = ExecutionContext()
    up = gemm(x, w, ctx=unfused, name="gemm2")
    a = add_bias_gelu(up, ffn_bias, ctx=unfused)
    fused = ExecutionContext()
    b = gemm(x, w, bias=ffn_bias, activation="gelu", ctx=fused,
             name="gemm2_fused")
    np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)
    report("GEMM + bias + GELU epilogue (Fig 10)", unfused, fused)

    # --- 3. unpack fused into the QKV bias/transpose footprint (III-D) ---
    lens = [200, 140, 256, 90]
    max_len = 256
    gather = np.concatenate(
        [b * max_len + np.arange(l) for b, l in enumerate(lens)]
    )
    qkv_packed = rng.normal(size=(len(gather), 3 * HIDDEN)).astype(np.float32)
    qkv_bias = rng.normal(size=3 * HIDDEN).astype(np.float32)

    unfused = ExecutionContext()
    padded = unpack_tokens(
        qkv_packed + qkv_bias, gather, len(lens) * max_len, ctx=unfused
    )
    # (the separate bias-add pass real code would also need)
    _ = pack_tokens(padded, gather, ctx=unfused)

    fused = ExecutionContext()
    add_bias_unpack_split_heads_qkv(
        qkv_packed, qkv_bias, gather, len(lens), max_len, 12, ctx=fused
    )
    print(
        f"{'unpack fused into bias+transpose (III-D)':<38} "
        f"standalone pack/unpack {unfused.elapsed_us():7.1f} us vs "
        f"fused-into-footprint {fused.elapsed_us():7.1f} us"
    )


if __name__ == "__main__":
    main()
