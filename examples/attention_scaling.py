"""How each MHA implementation scales with sequence length.

Sweeps the full 128-1024 range for all four MHA variants of Figures
11/12 plus two FlashAttention-style kernels — the paper-era fixed-shape
one (padded work) and the later varlen one (packed, cu_seqlens) — showing
the crossover behaviour the paper's §III-E designs around: the short
fused kernel until shared memory runs out (~384), then the grouped-GEMM
kernel, both padding-free.

Run:  python examples/attention_scaling.py
"""

from __future__ import annotations

import numpy as np

from repro.attention.flash_varlen import flash_varlen_launch
from repro.core.config import FUSED_MHA, BertConfig
from repro.core.estimator import (
    estimate_byte_mha,
    estimate_standard_mha,
    estimate_unfused_cublas_mha,
    estimate_zeropad_mha,
)
from repro.gpusim import ExecutionContext, KernelLaunch
from repro.gpusim.memory import BYTES_PER_ELEMENT
from repro.gpusim.kernel import ComputeUnit
from repro.workloads.generator import uniform_lengths

BATCH = 16
CONFIG = BertConfig(num_layers=1)


def flash_style_time(seq_len: int) -> float:
    """A FlashAttention-style kernel: one CTA per attention unit, padded
    FLOPs (identical shapes assumed), no intermediate-matrix traffic."""
    from repro.attention.flash import _FLASH_EFFICIENCY

    heads = CONFIG.num_heads
    hs = CONFIG.head_size
    ctx = ExecutionContext()
    ctx.launch(
        KernelLaunch(
            name="flash_mha",
            category="attention",
            grid=BATCH * heads,
            block_threads=128,
            flops=4.0 * BATCH * heads * seq_len * seq_len * hs,
            dram_bytes=4.0 * BATCH * heads * seq_len * hs * BYTES_PER_ELEMENT,
            compute_unit=ComputeUnit.TENSOR_FP16,
            compute_efficiency=_FLASH_EFFICIENCY,
            regs_per_thread=128,
        )
    )
    return ctx.elapsed_us()


def main() -> None:
    rng = np.random.default_rng(3)
    print(
        f"{'max_seq':>8}{'PyTorch':>12}{'cuBLAS':>12}{'cuBLAS+zp':>12}"
        f"{'flash(pad)':>12}{'flash(vl)':>12}{'ByteTx':>12}{'kernel':>10}"
    )
    for seq in (128, 192, 256, 320, 384, 512, 640, 768, 896, 1024):
        lens = uniform_lengths(BATCH, seq, 0.6, rng)
        times = {}
        ctx = ExecutionContext()
        estimate_standard_mha(ctx, BATCH, seq, CONFIG)
        times["pt"] = ctx.elapsed_us()
        ctx = ExecutionContext()
        estimate_unfused_cublas_mha(ctx, BATCH, seq, CONFIG)
        times["cu"] = ctx.elapsed_us()
        ctx = ExecutionContext()
        estimate_zeropad_mha(ctx, lens, seq, CONFIG)
        times["zp"] = ctx.elapsed_us()
        times["flash"] = flash_style_time(seq)
        ctx = ExecutionContext()
        ctx.launch(
            flash_varlen_launch(lens, CONFIG.num_heads, CONFIG.head_size)
        )
        times["flash_vl"] = ctx.elapsed_us()
        ctx = ExecutionContext()
        estimate_byte_mha(ctx, lens, CONFIG, FUSED_MHA)
        times["bt"] = ctx.elapsed_us()
        kernel = (
            "short" if ctx.records[0].launch.name == "fused_mha_short"
            else "grouped"
        )
        print(
            f"{seq:>8}"
            f"{times['pt']:>12.1f}{times['cu']:>12.1f}{times['zp']:>12.1f}"
            f"{times['flash']:>12.1f}{times['flash_vl']:>12.1f}"
            f"{times['bt']:>12.1f}{kernel:>10}"
        )
    print(
        "\nByteTransformer switches from the shared-memory kernel to the "
        "grouped-GEMM kernel past seq 384\n(Algorithm III.1 -> §III-E.2) "
        "and stays fastest among its 2022 contemporaries at every length.\n"
        "flash(vl) is the retrospective varlen-FlashAttention design the "
        "field adopted later: already\ncompetitive at short lengths even "
        "at 2022-era kernel efficiency, behind the grouped FMHA at long "
        "ones."
    )


if __name__ == "__main__":
    main()
