"""Extension: the paper's strategies on an encoder-decoder Transformer.

The paper optimises encoder-only BERT and notes the techniques "easily
extend to other transformers that contain the decoder part".  This
example runs the packed seq2seq model: causal self-attention via the
grouped-GEMM causal row-strip decomposition, cross-attention over two
*independently* packed batches (source and target lengths differ), and
verifies the whole thing against a plain NumPy oracle.

Run:  python examples/seq2seq_decoder.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FUSED_MHA, BertConfig
from repro.core.reference import reference_encoder
from repro.core.weights import init_model_weights
from repro.decoder import Seq2SeqModel, init_decoder_weights, reference_decoder
from repro.gpusim import ExecutionContext, ProfileReport
from repro.workloads.generator import make_batch


def main() -> None:
    config = BertConfig(num_layers=2)
    enc_w = init_model_weights(config, seed=0)
    dec_w = init_decoder_weights(config, seed=1)

    # translation-style workload: long sources, shorter targets
    src = make_batch(6, 96, config.hidden_size, alpha=0.6, seed=2)
    tgt = make_batch(6, 64, config.hidden_size, alpha=0.7, seed=3)
    print(
        f"source lengths {src.seq_lens.tolist()} (max {src.max_seq_len}), "
        f"target lengths {tgt.seq_lens.tolist()} (max {tgt.max_seq_len})"
    )

    model = Seq2SeqModel(
        config, FUSED_MHA, encoder_weights=enc_w, decoder_weights=dec_w
    )
    ctx = ExecutionContext()
    out = model.forward(src.x, src.mask, tgt.x, tgt.mask, ctx=ctx)
    print(
        f"\npacked seq2seq forward: {ctx.elapsed_us():.1f} us modelled, "
        f"{ctx.kernel_count()} kernels"
    )

    # oracle check
    memory = reference_encoder(src.x, enc_w, config, src.mask)
    memory *= src.mask[:, :, None]
    oracle = reference_decoder(tgt.x, memory, dec_w, config, tgt.mask, src.mask)
    valid = tgt.mask.astype(bool)
    err = np.abs(out[valid] - oracle[valid]).max()
    print(f"max |error| vs oracle: {err:.2e}")
    assert err < 1e-2

    # causal work accounting: the strip decomposition spends roughly half
    # the square attention's FLOPs
    causal_flops = sum(
        r.launch.flops
        for r in ctx.records
        if r.launch.name.startswith("causal_grouped")
    )
    cross_flops = sum(
        r.launch.flops
        for r in ctx.records
        if r.launch.name.startswith("cross_grouped")
    )
    print(
        f"causal self-attention GEMM work {causal_flops / 1e9:.2f} GFLOP, "
        f"cross-attention {cross_flops / 1e9:.2f} GFLOP"
    )
    print("\n" + ProfileReport.from_context(ctx).to_table("seq2seq"))


if __name__ == "__main__":
    main()
