"""Chaos serving: surviving kernel faults, deadlines and overload.

The paper's whole motivation is online serving — and online means things
fail.  This example replays one seeded request trace three ways:

1. a clean replay (no faults) as the baseline;
2. a chaos replay with ~10% transient faults injected into the fused
   attention kernels, showing retry/backoff and the degradation ladder
   stepping the engine onto conservative kernels and recovering;
3. an overload replay with tight deadlines and admission control,
   showing early rejection and deadline shedding instead of late
   timeouts.

Every request is accounted for — served, shed, or failed — and the
chaos replay's served outputs are bit-identical to the clean replay's
(the engine fallbacks compute the same function).

The chaos replay runs under full telemetry: it prints the SLO summary
(availability, error-budget burn, deadline attainment) computed from the
metrics registry, and exports the merged request-span + kernel timeline
as a Chrome/Perfetto trace — telemetry observes the replay without
perturbing a single bit of it.

Run:  python examples/serving_chaos.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core.config import BertConfig
from repro.core.model import BertEncoderModel
from repro.gpusim.trace import write_telemetry_trace
from repro.serving import (
    AdmissionController,
    DegradationLadder,
    FaultSpec,
    NO_FAULTS,
    ServingRuntime,
)
from repro.telemetry import SloPolicy, SloReport, Telemetry
from repro.workloads.batching import TimeoutBatcher
from repro.workloads.serving import make_trace

CONFIG = BertConfig(num_heads=4, head_size=16, num_layers=2)
SEED = 7


def build_runtime(faults: FaultSpec, **kwargs) -> ServingRuntime:
    return ServingRuntime(
        CONFIG,
        batcher=TimeoutBatcher(batch_size=8, timeout_us=2000.0),
        ladder=DegradationLadder(
            trip_threshold=2, window_us=20_000.0, cooldown_us=15_000.0
        ),
        faults=faults,
        numerics=BertEncoderModel(CONFIG, seed=SEED),
        seed=SEED,
        **kwargs,
    )


def main() -> None:
    trace = make_trace(
        120, 128, mean_interarrival_us=350.0, seed=SEED
    )

    print("=== clean replay ===")
    clean = build_runtime(NO_FAULTS).run(trace)
    print(clean.render_text())

    print("\n=== chaos replay: ~10% transient faults on fused kernels ===")
    chaos_spec = FaultSpec(
        launch_failure_rate=0.06,
        transient_oom_rate=0.04,
        slow_rate=0.05,
        slow_factor=4.0,
        target_prefixes=("fused_mha", "fmha_"),
    )
    tel = Telemetry()
    chaos = build_runtime(chaos_spec, telemetry=tel).run(trace)
    print(chaos.render_text())
    print(SloReport.from_registry(tel.metrics, SloPolicy()).render_text())

    both = sorted(set(clean.outputs) & set(chaos.outputs))
    identical = all(
        np.array_equal(clean.outputs[rid], chaos.outputs[rid])
        for rid in both
    )
    print(
        f"\nserved outputs bit-identical to the clean replay: "
        f"{identical} ({len(both)} requests compared)"
    )

    trace_path = Path(tempfile.gettempdir()) / "serving_chaos_trace.json"
    write_telemetry_trace(tel, trace_path)
    print(f"chaos replay telemetry trace written to {trace_path}")

    print("\n=== overload replay: tight deadlines + admission control ===")
    overload_trace = make_trace(
        120, 128, mean_interarrival_us=15.0, seed=SEED, deadline_us=1200.0
    )
    overload = build_runtime(
        NO_FAULTS, admission=AdmissionController(high_water_us=1200.0)
    ).run(overload_trace)
    print(overload.render_text())


if __name__ == "__main__":
    main()
