"""Online serving with variable-length requests — the paper's motivation.

Replays a Poisson-arrival request trace (mixed sentence lengths, like the
TikTok/Douyin traffic ByteTransformer serves) against every framework
model.  Requests are batched in arrival order; each batch's latency comes
from the framework's cost model; queueing delay accumulates when the GPU
falls behind.  Reports mean/p95/p99 end-to-end latency per framework.

Run:  python examples/serving_variable_length.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BertConfig
from repro.frameworks import all_frameworks
from repro.workloads.generator import LengthDistribution
from repro.workloads.serving import ServingTrace, make_trace

BATCH_SIZE = 8
MAX_SEQ_LEN = 448  # within TurboTransformer's supported range
NUM_REQUESTS = 256


def replay(trace: ServingTrace, framework, config: BertConfig) -> np.ndarray:
    """End-to-end latency (us) of every request under one framework."""
    latencies = np.empty(trace.num_requests)
    gpu_free_at = 0.0
    for group in trace.batches(BATCH_SIZE):
        lens = np.asarray([r.seq_len for r in group])
        # the batch can start once every member arrived and the GPU is free
        ready = max(r.arrival_us for r in group)
        start = max(ready, gpu_free_at)
        service = framework.latency_us(config, lens, trace.max_seq_len)
        finish = start + service
        gpu_free_at = finish
        for r in group:
            latencies[r.request_id] = finish - r.arrival_us
    return latencies


def main() -> None:
    config = BertConfig()  # full 12-layer BERT-base
    trace = make_trace(
        NUM_REQUESTS,
        MAX_SEQ_LEN,
        alpha=0.6,
        mean_interarrival_us=900.0,
        distribution=LengthDistribution.UNIFORM,
        seed=7,
    )
    lens = [r.seq_len for r in trace.requests]
    print(
        f"trace: {trace.num_requests} requests, lengths "
        f"{min(lens)}-{max(lens)} (mean {np.mean(lens):.0f}), "
        f"batch size {BATCH_SIZE}, padded shape {MAX_SEQ_LEN}"
    )
    print(f"{'framework':<20}{'mean_ms':>10}{'p95_ms':>10}{'p99_ms':>10}"
          f"{'throughput_rps':>16}")

    for fw in all_frameworks():
        if not fw.supports(MAX_SEQ_LEN):
            print(f"{fw.name:<20}{'unsupported shape':>30}")
            continue
        lat = replay(trace, fw, config)
        makespan_s = (
            max(r.arrival_us for r in trace.requests) + lat.max()
        ) / 1e6
        print(
            f"{fw.name:<20}"
            f"{lat.mean() / 1000:>10.2f}"
            f"{np.percentile(lat, 95) / 1000:>10.2f}"
            f"{np.percentile(lat, 99) / 1000:>10.2f}"
            f"{trace.num_requests / makespan_s:>16.0f}"
        )


if __name__ == "__main__":
    main()
