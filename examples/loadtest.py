"""Multi-tenant load test: open-loop traffic through the gateway.

Production serving is multi-tenant, and tenants do not fail together:
an interactive product wants tail latency, an analytics backfill wants
throughput, and a flash crowd on one must not take down the other.
This example wires the open-loop traffic generator to the admission
gateway and replays the result through the serving runtime:

* ``chat`` — latency-SLO class, Zipf-mixed request lengths, a deadline
  on every request, and a seeded 3x flash crowd mid-run;
* ``batch`` — throughput class, bursty MMPP arrivals, token-bucket
  rate-limited with a bounded queue, weight 1 against chat's 3.

Under the crowd the gateway holds the line: chat keeps its deadline
attainment while batch absorbs the shedding and rate-limit rejections.
Every request settles exactly once (served, shed, or rejected), and
the per-tenant SLO verdicts — including error-budget burn — are read
back from the same metrics registry the exporters dump.

Run:  python examples/loadtest.py
"""

from __future__ import annotations

from repro.core.config import BertConfig
from repro.core.model import BertEncoderModel
from repro.serving import (
    AdmissionGateway,
    DegradationLadder,
    QosClass,
    ServingRuntime,
    TenantPolicy,
)
from repro.telemetry import SloPolicy, SloReport, Telemetry
from repro.workloads.batching import ContinuousBatcher
from repro.workloads.generator import LengthDistribution
from repro.workloads.traffic import (
    FlashCrowd,
    LengthProfile,
    MmppArrivals,
    PoissonArrivals,
    TenantTraffic,
    generate_traffic,
)

CONFIG = BertConfig(num_heads=2, head_size=16, num_layers=2)
SEED = 11
HORIZON_US = 120_000.0
#: virtual drain rate of the gateway's DRR server (tokens per us)
SERVICE_RATE = 0.25


def main() -> None:
    crowd = FlashCrowd(
        start_us=0.35 * HORIZON_US,
        duration_us=0.25 * HORIZON_US,
        multiplier=3.0,
    )
    tenants = [
        TenantTraffic(
            "chat",
            PoissonArrivals(2_000.0),
            LengthProfile.zipf_mixed(128),
            deadline_us=30_000.0,
            flash_crowds=(crowd,),
        ),
        TenantTraffic(
            "batch",
            MmppArrivals(2_500.0),
            LengthProfile.single(128, LengthDistribution.UNIFORM, alpha=0.7),
        ),
    ]
    trace = generate_traffic(tenants, HORIZON_US, seed=SEED)
    print(
        f"generated {trace.num_requests} requests over "
        f"{HORIZON_US / 1e3:.0f} ms "
        f"(flash crowd x{crowd.multiplier:.0f} on chat)"
    )

    gateway = AdmissionGateway(
        [
            TenantPolicy(
                "chat",
                qos=QosClass.LATENCY_SLO,
                weight=3.0,
                slo_target=0.99,
            ),
            TenantPolicy(
                "batch",
                qos=QosClass.THROUGHPUT_BATCH,
                weight=1.0,
                rate_tokens_per_s=SERVICE_RATE * 1e6 * 0.4,
                burst_tokens=2_048.0,
                max_queue_tokens=2_048,
                slo_target=0.5,
            ),
        ],
        service_rate_tokens_per_us=SERVICE_RATE,
        quantum_tokens=256,
    )

    tel = Telemetry()
    runtime = ServingRuntime(
        CONFIG,
        batcher=ContinuousBatcher(token_budget=1024, timeout_us=2_000.0),
        ladder=DegradationLadder(
            trip_threshold=2, window_us=20_000.0, cooldown_us=15_000.0
        ),
        numerics=BertEncoderModel(CONFIG, seed=SEED),
        telemetry=tel,
        gateway=gateway,
        seed=SEED,
    )
    report = runtime.run(trace)
    print()
    print(report.render_text())

    print("\n== per-tenant SLO ==")
    for policy in gateway.policies.values():
        view = SloReport.for_tenant(
            tel.metrics,
            policy.name,
            SloPolicy(success_target=policy.slo_target),
        )
        burn = view.budget_burn
        burn_text = "n/a (no budget)" if burn is None else f"{burn:.2f}x"
        attainment = view.deadline_attainment
        att_text = "n/a" if attainment is None else f"{attainment:.3f}"
        print(
            f"{policy.name:>6} [{policy.qos.name}]: "
            f"served={view.served} shed={view.shed} "
            f"rejected={view.rejected} "
            f"deadline attainment={att_text} "
            f"error-budget burn={burn_text}"
        )

    settled = len(report.outcomes)
    print(
        f"\nno silent loss: {settled == trace.num_requests} "
        f"({settled}/{trace.num_requests} requests settled exactly once)"
    )


if __name__ == "__main__":
    main()
