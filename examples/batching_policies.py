"""Online batching policies x inference engines.

Serving-side batching interacts with the padding story: FIFO batches mix
lengths (maximal padding for padded engines), length-bucketed batching
makes batches homogeneous at the cost of queueing delay, and a packed
engine like ByteTransformer is largely indifferent — it only ever pays
for valid tokens.  This example replays one dense request trace under
three policies against a padded engine (PyTorch JIT) and the packed
engine, reporting latency percentiles and GPU busy time.

Run:  python examples/batching_policies.py
"""

from __future__ import annotations

from repro.core.config import BertConfig
from repro.frameworks import ByteTransformer, PyTorchJIT
from repro.workloads.batching import (
    BucketBatcher,
    FifoBatcher,
    TimeoutBatcher,
    replay,
)
from repro.workloads.serving import make_trace


def main() -> None:
    config = BertConfig()  # 12 layers
    trace = make_trace(
        200, 384, alpha=0.6, mean_interarrival_us=250.0, seed=11
    )
    policies = [
        FifoBatcher(batch_size=8),
        TimeoutBatcher(batch_size=8, timeout_us=2000.0),
        BucketBatcher(batch_size=8, bucket_width=64, timeout_us=4000.0),
    ]
    engines = [PyTorchJIT(), ByteTransformer()]

    print(
        f"trace: {trace.num_requests} requests, max seq {trace.max_seq_len}, "
        f"mean interarrival 250 us\n"
    )
    print(
        f"{'engine':<18}{'policy':<10}{'mean_ms':>9}{'p99_ms':>9}"
        f"{'gpu_busy_ms':>13}{'batches':>9}"
    )
    for engine in engines:
        for policy in policies:
            result = replay(trace, policy, engine, config)
            batches = len(policy.plan(trace))
            print(
                f"{engine.name:<18}{result.policy:<10}"
                f"{result.mean_ms:>9.2f}{result.p99_ms:>9.2f}"
                f"{result.gpu_busy_us / 1000:>13.1f}{batches:>9}"
            )
        print()
    print(
        "Bucketing tries to do at the scheduler level what the zero-\n"
        "padding algorithm does at the kernel level.  At this arrival\n"
        "rate the buckets rarely fill, so bucketing mostly fragments the\n"
        "batches (more, smaller launches) — it roughly breaks even for\n"
        "the padded engine and strictly hurts the packed one, which was\n"
        "already padding-free under plain FIFO.  The packed engine wins\n"
        "every policy, with its best case being the simplest one."
    )


if __name__ == "__main__":
    main()
