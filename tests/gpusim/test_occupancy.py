"""Occupancy model: the four resource limits and their interactions."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gpusim import A100_SPEC, KernelLaunch, blocks_per_sm
from repro.gpusim.errors import LaunchConfigError


def make(threads=128, smem=0, regs=32):
    return KernelLaunch(
        name="k",
        category="c",
        grid=1,
        block_threads=threads,
        shared_mem_per_block=smem,
        regs_per_thread=regs,
    )


class TestLimits:
    def test_small_block_hits_block_slot_limit(self):
        occ = blocks_per_sm(make(threads=32, regs=16), A100_SPEC)
        assert occ.blocks_per_sm == A100_SPEC.max_blocks_per_sm
        assert occ.limiting_factor == "block_slots"

    def test_large_block_hits_thread_limit(self):
        occ = blocks_per_sm(make(threads=1024, regs=16), A100_SPEC)
        assert occ.blocks_per_sm == 2  # 2048 threads / 1024
        assert occ.limiting_factor == "thread_slots"

    def test_register_limit(self):
        # 200 regs * 256 threads fits once per SM but not twice
        occ = blocks_per_sm(make(threads=256, regs=200), A100_SPEC)
        assert occ.limiting_factor == "registers"
        assert occ.blocks_per_sm == 1

    def test_register_exhaustion_raises(self):
        # 255 regs * 1024 threads cannot fit even one block
        from repro.gpusim.errors import ResourceExhaustedError

        with pytest.raises(ResourceExhaustedError, match="registers"):
            blocks_per_sm(make(threads=1024, regs=255), A100_SPEC)

    def test_shared_memory_limit(self):
        occ = blocks_per_sm(
            make(threads=128, smem=100 * 1024, regs=16), A100_SPEC
        )
        assert occ.limiting_factor == "shared_memory"
        assert occ.blocks_per_sm == 1

    def test_full_occupancy_flag(self):
        occ = blocks_per_sm(make(threads=256, regs=16), A100_SPEC)
        assert occ.is_full
        assert occ.warps_per_sm == 64

    def test_partial_occupancy_fraction(self):
        occ = blocks_per_sm(make(threads=256, regs=200), A100_SPEC)
        assert occ.occupancy == pytest.approx(256 / 2048)


class TestHardLimits:
    def test_too_many_threads_raises(self):
        with pytest.raises(LaunchConfigError, match="threads/block"):
            blocks_per_sm(make(threads=2048), A100_SPEC)

    def test_too_much_shared_memory_raises(self):
        with pytest.raises(LaunchConfigError, match="shared memory"):
            blocks_per_sm(make(smem=200 * 1024), A100_SPEC)

    def test_too_many_registers_raises(self):
        with pytest.raises(LaunchConfigError, match="registers/thread"):
            blocks_per_sm(make(regs=300), A100_SPEC)


def _regs_fit(threads, regs):
    """Whether one block fits the register file after the model's
    warp-granularity rounding (the raw ``regs * threads`` product
    under-counts: allocation is per ceil'd warp, rounded to 256)."""
    warps = -(-threads // A100_SPEC.warp_size)
    per_warp = -(-regs * A100_SPEC.warp_size // 256) * 256
    return warps * per_warp <= A100_SPEC.registers_per_sm


class TestProperties:
    @given(
        threads=st.integers(32, 1024),
        regs=st.integers(16, 255),
        smem=st.integers(0, 96 * 1024),
    )
    @settings(max_examples=60, deadline=None)
    def test_occupancy_within_bounds(self, threads, regs, smem):
        assume(_regs_fit(threads, regs))
        occ = blocks_per_sm(make(threads, smem, regs), A100_SPEC)
        assert 1 <= occ.blocks_per_sm <= A100_SPEC.max_blocks_per_sm
        assert 0.0 < occ.occupancy <= 1.0
        assert (
            occ.blocks_per_sm * threads <= A100_SPEC.max_threads_per_sm
            or occ.blocks_per_sm == 1
        )

    @given(threads=st.integers(32, 1024), regs=st.integers(16, 128))
    @settings(max_examples=40, deadline=None)
    def test_more_shared_memory_never_raises_occupancy(self, threads, regs):
        assume(_regs_fit(threads, regs))
        low = blocks_per_sm(make(threads, 8 * 1024, regs), A100_SPEC)
        high = blocks_per_sm(make(threads, 64 * 1024, regs), A100_SPEC)
        assert high.blocks_per_sm <= low.blocks_per_sm

    @given(threads=st.integers(32, 256), smem=st.integers(0, 32 * 1024))
    @settings(max_examples=40, deadline=None)
    def test_more_registers_never_raises_occupancy(self, threads, smem):
        low = blocks_per_sm(make(threads, smem, 32), A100_SPEC)
        high = blocks_per_sm(make(threads, smem, 200), A100_SPEC)
        assert high.blocks_per_sm <= low.blocks_per_sm
