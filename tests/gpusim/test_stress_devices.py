"""Failure injection: extreme device configurations.

The pipelines must degrade gracefully (different dispatch, slower time)
— never crash — on devices far from the A100 the constants were set for.
"""

import numpy as np
import pytest

from repro.core.config import FUSED_MHA, BertConfig
from repro.core.estimator import estimate_byte_mha, estimate_model
from repro.gpusim import A100_SPEC, ExecutionContext

CFG = BertConfig(num_layers=1)


def device(**overrides):
    return A100_SPEC.with_overrides(**overrides)


class TestExtremeDevices:
    def test_single_sm_device_runs(self):
        tiny = device(num_sms=1, dram_saturation_threads=512)
        ctx = ExecutionContext(tiny)
        lens = np.array([64, 100, 80])
        t = estimate_model(ctx, CFG, FUSED_MHA, lens, 128)
        assert t > 0

    def test_fewer_sms_is_slower(self):
        """Cutting the device down (SMs *and* the throughput that goes
        with them) must slow everything monotonically."""
        lens = np.array([200, 256, 180, 220] * 4)
        times = []
        for frac in (1.0, 0.25, 0.05):
            sms = max(1, int(A100_SPEC.num_sms * frac))
            dev = device(
                num_sms=sms,
                dram_saturation_threads=sms * 512,
                tensor_fp16_tflops=A100_SPEC.tensor_fp16_tflops * frac,
                fp16_tflops=A100_SPEC.fp16_tflops * frac,
                fp32_tflops=A100_SPEC.fp32_tflops * frac,
                dram_bandwidth_gbs=A100_SPEC.dram_bandwidth_gbs * frac,
            )
            ctx = ExecutionContext(dev)
            times.append(estimate_model(ctx, CFG, FUSED_MHA, lens, 256))
        assert times[0] < times[1] < times[2]

    def test_tiny_shared_memory_forces_grouped_kernel(self):
        """With 32 KiB shared memory even short sequences exceed the
        Algorithm III.1 buffers; dispatch must fall back to grouped."""
        cramped = device(
            shared_mem_per_sm=34 * 1024, max_shared_mem_per_block=33 * 1024
        )
        ctx = ExecutionContext(cramped)
        lens = np.array([200, 256, 180])
        estimate_byte_mha(ctx, lens, CFG, FUSED_MHA)
        names = {r.launch.name for r in ctx.records}
        assert "fmha_grouped_qk" in names
        assert "fused_mha_short" not in names

    def test_generous_shared_memory_keeps_short_kernel(self):
        ctx = ExecutionContext(A100_SPEC)
        lens = np.array([200, 256, 180])
        estimate_byte_mha(ctx, lens, CFG, FUSED_MHA)
        assert ctx.records[0].launch.name == "fused_mha_short"

    def test_huge_launch_overhead_still_finite(self):
        slow_host = device(kernel_launch_overhead_us=500.0)
        ctx = ExecutionContext(slow_host)
        lens = np.array([64, 100])
        t = estimate_model(ctx, CFG, FUSED_MHA, lens, 128)
        assert t >= 500.0 * ctx.kernel_count()

    def test_bandwidth_starved_device_memory_bound(self):
        starved = device(dram_bandwidth_gbs=50.0)
        fast = ExecutionContext(A100_SPEC)
        slow = ExecutionContext(starved)
        lens = np.array([200, 256, 180, 220] * 4)
        t_fast = estimate_model(fast, CFG, FUSED_MHA, lens, 256)
        t_slow = estimate_model(slow, CFG, FUSED_MHA, lens, 256)
        assert t_slow > 2 * t_fast

    def test_fused_mha_still_wins_on_every_extreme(self):
        """The structural conclusion survives extreme hardware."""
        from repro.core.config import BASELINE

        lens = np.array([200, 256, 180, 220] * 4)
        for overrides in (
            dict(num_sms=8, dram_saturation_threads=8 * 512),
            dict(dram_bandwidth_gbs=100.0),
            dict(kernel_launch_overhead_us=50.0),
            dict(
                shared_mem_per_sm=34 * 1024,
                max_shared_mem_per_block=33 * 1024,
            ),
        ):
            dev = device(**overrides)
            base = ExecutionContext(dev)
            estimate_model(base, CFG, BASELINE, lens, 256)
            fused = ExecutionContext(dev)
            estimate_model(fused, CFG, FUSED_MHA, lens, 256)
            assert fused.elapsed_us() < base.elapsed_us(), overrides
