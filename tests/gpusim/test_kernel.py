"""KernelLaunch descriptor validation and derived quantities."""

import pytest

from repro.gpusim import ComputeUnit, KernelLaunch


def make(**kwargs):
    defaults = dict(name="k", category="c", grid=4, block_threads=128)
    defaults.update(kwargs)
    return KernelLaunch(**defaults)


class TestValidation:
    def test_minimal_launch(self):
        launch = make()
        assert launch.total_threads == 512
        assert launch.flops == 0.0

    def test_zero_grid_rejected(self):
        with pytest.raises(ValueError, match="grid"):
            make(grid=0)

    def test_negative_grid_rejected(self):
        with pytest.raises(ValueError, match="grid"):
            make(grid=-4)

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError, match="block_threads"):
            make(block_threads=0)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError, match="byte counts|flops"):
            make(flops=-1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            make(dram_bytes=-1.0)

    def test_negative_hot_bytes_rejected(self):
        with pytest.raises(ValueError):
            make(hot_bytes=-1.0)

    def test_efficiency_must_be_positive(self):
        with pytest.raises(ValueError, match="compute_efficiency"):
            make(compute_efficiency=0.0)

    def test_efficiency_capped_at_one(self):
        with pytest.raises(ValueError, match="compute_efficiency"):
            make(compute_efficiency=1.2)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError, match="extra_overhead_us"):
            make(extra_overhead_us=-0.1)

    def test_negative_smem_rejected(self):
        with pytest.raises(ValueError, match="resource"):
            make(shared_mem_per_block=-1)


class TestDerived:
    def test_arithmetic_intensity(self):
        launch = make(flops=100.0, dram_bytes=50.0)
        assert launch.arithmetic_intensity == 2.0

    def test_arithmetic_intensity_no_traffic(self):
        launch = make(flops=100.0, dram_bytes=0.0)
        assert launch.arithmetic_intensity == float("inf")

    def test_compute_unit_default_fp32(self):
        assert make().compute_unit is ComputeUnit.FP32

    def test_launch_is_hashable(self):
        assert hash(make()) == hash(make())
