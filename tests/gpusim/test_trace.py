"""Chrome-trace export."""

import json

from repro.gpusim import ExecutionContext, KernelLaunch
from repro.gpusim.trace import to_chrome_trace, write_chrome_trace


def make_ctx():
    ctx = ExecutionContext()
    for name in ("gemm0_qkv", "fused_mha_short"):
        ctx.launch(
            KernelLaunch(
                name=name,
                category="cat",
                grid=128,
                block_threads=256,
                flops=1e9,
                dram_bytes=1e6,
            )
        )
    return ctx


class TestChromeTrace:
    def test_one_event_per_launch_plus_metadata(self):
        trace = to_chrome_trace(make_ctx())
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == 2
        assert len(meta) == 2

    def test_events_carry_timeline(self):
        ctx = make_ctx()
        trace = to_chrome_trace(ctx)
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["ts"] == 0.0
        assert complete[1]["ts"] == ctx.records[0].time_us
        assert complete[0]["dur"] == ctx.records[0].time_us

    def test_args_carry_counters(self):
        trace = to_chrome_trace(make_ctx())
        event = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]
        assert event["args"]["gflops"] == 1.0
        assert event["args"]["grid"] == 128
        assert event["args"]["compute_unit"] == "fp32"

    def test_device_in_process_name(self):
        trace = to_chrome_trace(make_ctx(), process_name="demo")
        meta = trace["traceEvents"][0]
        assert "demo" in meta["args"]["name"]
        assert "A100" in meta["args"]["name"]

    def test_round_trips_through_json(self, tmp_path):
        path = write_chrome_trace(make_ctx(), tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == 4

    def test_empty_context(self):
        trace = to_chrome_trace(ExecutionContext())
        assert all(e["ph"] == "M" for e in trace["traceEvents"])
