"""Roofline classification."""

import pytest

from repro.gpusim import ComputeUnit, ExecutionContext, KernelLaunch
from repro.gpusim.roofline import Bound, classify_record, roofline_report


def launch(flops=0.0, dram=0.0, grid=1024, **kw):
    return KernelLaunch(
        name=kw.pop("name", "k"),
        category=kw.pop("category", "c"),
        grid=grid,
        block_threads=256,
        flops=flops,
        dram_bytes=dram,
        **kw,
    )


class TestClassification:
    def test_compute_bound(self):
        ctx = ExecutionContext()
        record = ctx.launch(
            launch(flops=1e11, dram=1e5, compute_unit=ComputeUnit.TENSOR_FP16)
        )
        k = classify_record(record, ctx.device)
        assert k.bound is Bound.COMPUTE
        assert k.compute_us > k.memory_us

    def test_memory_bound(self):
        ctx = ExecutionContext()
        record = ctx.launch(launch(flops=1e6, dram=5e8))
        k = classify_record(record, ctx.device)
        assert k.bound is Bound.MEMORY

    def test_launch_bound(self):
        ctx = ExecutionContext()
        record = ctx.launch(launch(flops=1e3, dram=1e3))
        k = classify_record(record, ctx.device)
        assert k.bound is Bound.LAUNCH
        assert k.overhead_share > 0.5

    def test_decomposition_consistent_with_total(self):
        ctx = ExecutionContext()
        record = ctx.launch(launch(flops=1e10, dram=1e8))
        k = classify_record(record, ctx.device)
        assert k.time_us == pytest.approx(
            max(k.compute_us, k.memory_us) + k.overhead_us
        )


class TestBoundaries:
    """Degenerate launches must still classify sanely."""

    def test_tiny_kernel_is_launch_bound_with_full_decomposition(self):
        # a one-block kernel doing almost nothing: overhead dominates,
        # but the decomposition still tiles the modelled time exactly
        ctx = ExecutionContext()
        record = ctx.launch(launch(flops=1.0, dram=1.0, grid=1))
        k = classify_record(record, ctx.device)
        assert k.bound is Bound.LAUNCH
        assert k.time_us == pytest.approx(
            max(k.compute_us, k.memory_us) + k.overhead_us
        )
        assert k.overhead_us >= max(k.compute_us, k.memory_us)

    def test_zero_flop_collective_is_never_compute_bound(self):
        # collectives move bytes without FLOPs; the roofline must not
        # divide by a zero compute peak or call them compute-bound
        ctx = ExecutionContext()
        record = ctx.launch(
            launch(flops=0.0, dram=4e8, name="allreduce",
                   category="collective")
        )
        k = classify_record(record, ctx.device)
        assert k.compute_us == 0.0
        assert k.bound is Bound.MEMORY
        assert k.memory_us > 0.0

    def test_zero_flop_zero_byte_probe_is_pure_launch(self):
        ctx = ExecutionContext()
        record = ctx.launch(launch(name="probe"))
        k = classify_record(record, ctx.device)
        assert k.bound is Bound.LAUNCH
        assert k.compute_us == 0.0 and k.memory_us == 0.0
        assert k.time_us == pytest.approx(k.overhead_us)

    def test_report_shares_survive_degenerate_mix(self):
        ctx = ExecutionContext()
        ctx.launch(launch(name="probe"))
        ctx.launch(
            launch(flops=0.0, dram=4e8, name="allreduce",
                   category="collective")
        )
        report = roofline_report(ctx)
        assert sum(report.share(b) for b in Bound) == pytest.approx(1.0)
        assert report.count(Bound.LAUNCH) == 1
        assert report.count(Bound.MEMORY) == 1


class TestReport:
    def test_shares_sum_to_one(self):
        ctx = ExecutionContext()
        ctx.launch(launch(flops=1e11, name="big_gemm"))
        ctx.launch(launch(dram=5e8, name="streamer"))
        ctx.launch(launch(name="tiny"))
        report = roofline_report(ctx)
        total = sum(report.share(b) for b in Bound)
        assert total == pytest.approx(1.0)
        assert report.count(Bound.COMPUTE) == 1
        assert report.count(Bound.MEMORY) == 1
        assert report.count(Bound.LAUNCH) == 1

    def test_table_lists_top_kernels(self):
        ctx = ExecutionContext()
        ctx.launch(launch(flops=1e11, name="dominant"))
        ctx.launch(launch(name="trivial"))
        table = roofline_report(ctx).to_table(top=1)
        assert "dominant" in table
        assert "trivial" not in table.split("bound\n")[-1]

    def test_baseline_layer_memory_bound_tail(self):
        """The paper's premise: the baseline pipeline's non-GEMM kernels
        are memory- or launch-bound, which is why fusion pays."""
        import numpy as np

        from repro.core.config import BASELINE, BertConfig
        from repro.core.estimator import estimate_model

        ctx = ExecutionContext()
        estimate_model(
            ctx, BertConfig(num_layers=1), BASELINE, np.full(16, 512), 512
        )
        report = roofline_report(ctx)
        non_gemm = [
            k
            for k in report.kernels
            if not k.name.startswith("gemm")
            and "bmm" not in k.name
        ]
        assert non_gemm
        assert all(k.bound is not Bound.COMPUTE for k in non_gemm)
