"""DeviceSpec validation and preset sanity."""

import dataclasses

import pytest

from repro.gpusim import A10_SPEC, A100_SPEC, V100_SPEC, DeviceSpec


class TestPresets:
    def test_a100_core_counts(self):
        assert A100_SPEC.num_sms == 108
        assert A100_SPEC.warp_size == 32
        assert A100_SPEC.max_concurrent_blocks == 108 * 32

    def test_presets_are_distinct(self):
        names = {A100_SPEC.name, V100_SPEC.name, A10_SPEC.name}
        assert len(names) == 3

    def test_a100_fastest_tensor_cores(self):
        assert A100_SPEC.tensor_fp16_tflops > V100_SPEC.tensor_fp16_tflops
        assert A100_SPEC.tensor_fp16_tflops > A10_SPEC.tensor_fp16_tflops

    def test_effective_dram_below_peak(self):
        for spec in (A100_SPEC, V100_SPEC, A10_SPEC):
            assert spec.effective_dram_gbs < spec.dram_bandwidth_gbs
            assert spec.effective_dram_gbs > 0

    def test_l2_faster_than_dram(self):
        for spec in (A100_SPEC, V100_SPEC, A10_SPEC):
            assert spec.l2_bandwidth_gbs > spec.effective_dram_gbs


class TestValidation:
    def test_zero_sms_rejected(self):
        with pytest.raises(ValueError, match="num_sms"):
            dataclasses.replace(A100_SPEC, num_sms=0)

    def test_negative_clock_rejected(self):
        with pytest.raises(ValueError, match="clock_ghz"):
            dataclasses.replace(A100_SPEC, clock_ghz=-1.0)

    def test_dram_efficiency_bounds(self):
        with pytest.raises(ValueError, match="dram_efficiency"):
            dataclasses.replace(A100_SPEC, dram_efficiency=0.0)
        with pytest.raises(ValueError, match="dram_efficiency"):
            dataclasses.replace(A100_SPEC, dram_efficiency=1.5)

    def test_zero_warp_size_rejected(self):
        with pytest.raises(ValueError, match="warp_size"):
            dataclasses.replace(A100_SPEC, warp_size=0)

    def test_zero_launch_overhead_rejected(self):
        with pytest.raises(ValueError, match="kernel_launch_overhead_us"):
            dataclasses.replace(A100_SPEC, kernel_launch_overhead_us=0.0)


class TestOverrides:
    def test_with_overrides_replaces_field(self):
        modified = A100_SPEC.with_overrides(num_sms=64)
        assert modified.num_sms == 64
        assert modified.dram_bandwidth_gbs == A100_SPEC.dram_bandwidth_gbs

    def test_with_overrides_does_not_mutate(self):
        A100_SPEC.with_overrides(num_sms=64)
        assert A100_SPEC.num_sms == 108

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            A100_SPEC.with_overrides(num_sms=-1)

    def test_spec_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            A100_SPEC.num_sms = 1  # type: ignore[misc]
