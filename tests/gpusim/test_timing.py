"""Roofline timing model invariants."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import A100_SPEC, ComputeUnit, KernelLaunch, kernel_time_us
from repro.gpusim.timing import (
    compute_saturation_blocks,
    compute_time_us,
    expected_utilisation,
    memory_time_us,
)


def make(**kwargs):
    defaults = dict(
        name="k",
        category="c",
        grid=1024,
        block_threads=256,
        regs_per_thread=32,
    )
    defaults.update(kwargs)
    return KernelLaunch(**defaults)


class TestBasics:
    def test_empty_kernel_costs_launch_overhead(self):
        t = kernel_time_us(make(), A100_SPEC)
        assert t == pytest.approx(A100_SPEC.kernel_launch_overhead_us)

    def test_extra_overhead_is_additive(self):
        base = kernel_time_us(make(flops=1e9), A100_SPEC)
        extra = kernel_time_us(
            make(flops=1e9, extra_overhead_us=7.5), A100_SPEC
        )
        assert extra == pytest.approx(base + 7.5)

    def test_time_monotone_in_flops(self):
        t1 = kernel_time_us(make(flops=1e9), A100_SPEC)
        t2 = kernel_time_us(make(flops=4e9), A100_SPEC)
        assert t2 > t1

    def test_time_monotone_in_bytes(self):
        t1 = kernel_time_us(make(dram_bytes=1e7), A100_SPEC)
        t2 = kernel_time_us(make(dram_bytes=1e8), A100_SPEC)
        assert t2 > t1

    def test_tensor_cores_faster_than_fp32(self):
        fp32 = kernel_time_us(
            make(flops=1e10, compute_unit=ComputeUnit.FP32), A100_SPEC
        )
        tc = kernel_time_us(
            make(flops=1e10, compute_unit=ComputeUnit.TENSOR_FP16), A100_SPEC
        )
        assert tc < fp32

    def test_higher_efficiency_is_faster(self):
        slow = kernel_time_us(make(flops=1e10, compute_efficiency=0.2), A100_SPEC)
        fast = kernel_time_us(make(flops=1e10, compute_efficiency=0.8), A100_SPEC)
        assert fast < slow

    def test_roofline_takes_maximum(self):
        # compute-bound kernel: adding a little traffic changes nothing
        compute_heavy = make(flops=1e11, dram_bytes=1e6)
        just_compute = make(flops=1e11)
        assert kernel_time_us(compute_heavy, A100_SPEC) == pytest.approx(
            kernel_time_us(just_compute, A100_SPEC)
        )


class TestHotBytes:
    def test_hot_read_served_from_l2(self):
        small = 10 * 1024 * 1024  # well under 0.7 * 40 MiB
        as_hot = kernel_time_us(make(hot_bytes=small), A100_SPEC)
        as_dram = kernel_time_us(make(dram_bytes=small), A100_SPEC)
        assert as_hot < as_dram

    def test_large_hot_read_spills_to_dram(self):
        big = 100 * 1024 * 1024  # over L2 capacity
        as_hot = kernel_time_us(make(hot_bytes=big), A100_SPEC)
        as_dram = kernel_time_us(make(dram_bytes=big), A100_SPEC)
        assert as_hot == pytest.approx(as_dram)

    def test_spill_threshold_respects_l2_capacity(self):
        fits = int(0.7 * A100_SPEC.l2_bytes)
        over = fits + 1024
        assert kernel_time_us(make(hot_bytes=fits), A100_SPEC) < kernel_time_us(
            make(hot_bytes=over), A100_SPEC
        )

    def test_memory_time_combines_dram_and_hot(self):
        launch = make(dram_bytes=1e7, hot_bytes=1e7)
        combined = memory_time_us(launch, A100_SPEC, active_blocks=1024)
        dram_only = memory_time_us(
            make(dram_bytes=1e7), A100_SPEC, active_blocks=1024
        )
        hot_only = memory_time_us(
            make(hot_bytes=1e7), A100_SPEC, active_blocks=1024
        )
        assert combined == pytest.approx(dram_only + hot_only)


class TestUtilisation:
    def test_tiny_grid_penalised(self):
        # same work on 2 blocks vs 2048 blocks: small grid must be slower
        work = dict(flops=1e10, compute_unit=ComputeUnit.TENSOR_FP16)
        small = kernel_time_us(make(grid=2, **work), A100_SPEC)
        large = kernel_time_us(make(grid=2048, **work), A100_SPEC)
        assert small > large

    def test_saturating_grid_reaches_full_utilisation(self):
        launch = make(grid=4096)
        assert expected_utilisation(launch, A100_SPEC) == pytest.approx(1.0)

    def test_saturation_blocks_scale_with_block_size(self):
        small_blocks = compute_saturation_blocks(
            make(block_threads=64), A100_SPEC
        )
        large_blocks = compute_saturation_blocks(
            make(block_threads=256), A100_SPEC
        )
        assert small_blocks == 4 * large_blocks

    def test_one_block_per_sm_saturates_with_256_threads(self):
        launch = make(grid=A100_SPEC.num_sms, block_threads=256)
        assert expected_utilisation(launch, A100_SPEC) == pytest.approx(1.0)

    def test_oversubscribed_grid_fully_utilised(self):
        # once in-flight blocks exceed the compute-saturation point,
        # utilisation stays pinned at 1 (extra residents add no throughput)
        for grid in (432, 1000, 4096):
            assert expected_utilisation(
                make(grid=grid), A100_SPEC
            ) == pytest.approx(1.0)

    def test_utilisation_monotone_up_to_saturation(self):
        utils = [
            expected_utilisation(make(grid=g), A100_SPEC)
            for g in (1, 16, 54, 108)
        ]
        assert all(a <= b for a, b in zip(utils, utils[1:]))


class TestProperties:
    @given(
        flops=st.floats(0, 1e12),
        dram=st.floats(0, 1e9),
        grid=st.integers(1, 1 << 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_time_positive_and_finite(self, flops, dram, grid):
        launch = make(grid=grid, flops=flops, dram_bytes=dram)
        t = kernel_time_us(launch, A100_SPEC)
        assert t >= A100_SPEC.kernel_launch_overhead_us
        assert t < float("inf")

    @given(flops=st.floats(1e6, 1e12))
    @settings(max_examples=40, deadline=None)
    def test_compute_time_linear_in_flops(self, flops):
        t1 = compute_time_us(make(flops=flops), A100_SPEC)
        t2 = compute_time_us(make(flops=2 * flops), A100_SPEC)
        assert t2 == pytest.approx(2 * t1, rel=1e-9)

    @given(grid=st.integers(1, 8192))
    @settings(max_examples=60, deadline=None)
    def test_utilisation_in_unit_interval(self, grid):
        u = expected_utilisation(make(grid=grid), A100_SPEC)
        assert 0.0 < u <= 1.0
