"""Sensitivity sweeps: the paper's conclusions under perturbed constants."""

import numpy as np
import pytest

from repro.core.config import BASELINE, FUSED_MHA, BertConfig
from repro.core.estimator import estimate_model
from repro.gpusim import ExecutionContext
from repro.gpusim.whatif import (
    SWEEPABLE_FIELDS,
    format_sweep,
    sensitivity_sweep,
)

CFG = BertConfig(num_layers=2)
LENS = np.array([90, 150, 200, 256, 130, 170, 220, 80])


def byte_gain(device):
    """ByteTransformer's gain over its padded baseline on this device."""
    base = ExecutionContext(device)
    estimate_model(base, CFG, BASELINE, LENS, 256)
    fused = ExecutionContext(device)
    estimate_model(fused, CFG, FUSED_MHA, LENS, 256)
    return base.elapsed_us() / fused.elapsed_us()


class TestSweepMechanics:
    def test_scale_one_reproduces_baseline(self):
        result = sensitivity_sweep(
            "dram_bandwidth_gbs", byte_gain, scales=(1.0,)
        )
        assert result.points[0].metric == pytest.approx(
            result.baseline_metric
        )

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="not sweepable"):
            sensitivity_sweep("warp_size", byte_gain)

    def test_empty_scales_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            sensitivity_sweep("num_sms", byte_gain, scales=())

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            sensitivity_sweep("num_sms", byte_gain, scales=(-1.0,))

    def test_integer_fields_stay_integer(self):
        result = sensitivity_sweep("num_sms", byte_gain, scales=(0.5, 1.5))
        for p in result.points:
            assert p.value == int(p.value)

    def test_formatting(self):
        result = sensitivity_sweep(
            "kernel_launch_overhead_us", byte_gain, scales=(0.5, 2.0)
        )
        text = format_sweep(result)
        assert "sensitivity" in text and "metric range" in text


class TestRobustness:
    """The headline conclusion — ByteTransformer beats its padded
    baseline — must survive 2x perturbations of every swept constant."""

    @pytest.mark.parametrize("field", SWEEPABLE_FIELDS)
    def test_gain_survives_2x_perturbations(self, field):
        result = sensitivity_sweep(field, byte_gain, scales=(0.5, 1.0, 2.0))
        assert result.conclusion_stable(lambda gain: gain > 1.0), (
            field,
            result.metric_range,
        )

    def test_launch_overhead_moves_the_gain(self):
        """Higher launch overhead favours the fused engine (fewer
        launches), so the gain must grow with it."""
        result = sensitivity_sweep(
            "kernel_launch_overhead_us", byte_gain, scales=(0.25, 1.0, 4.0)
        )
        metrics = [p.metric for p in result.points]
        assert metrics == sorted(metrics)

    def test_max_relative_change_reported(self):
        result = sensitivity_sweep(
            "dram_bandwidth_gbs", byte_gain, scales=(0.5, 2.0)
        )
        assert result.max_relative_change() >= 0.0
