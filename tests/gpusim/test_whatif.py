"""Sensitivity sweeps: the paper's conclusions under perturbed constants."""

import numpy as np
import pytest

from repro.core.config import BASELINE, FUSED_MHA, BertConfig
from repro.core.estimator import estimate_model
from repro.gpusim import ExecutionContext
from repro.gpusim.whatif import (
    SWEEPABLE_FIELDS,
    format_sweep,
    sensitivity_sweep,
    value_sensitivity_sweep,
)

CFG = BertConfig(num_layers=2)
LENS = np.array([90, 150, 200, 256, 130, 170, 220, 80])


def byte_gain(device):
    """ByteTransformer's gain over its padded baseline on this device."""
    base = ExecutionContext(device)
    estimate_model(base, CFG, BASELINE, LENS, 256)
    fused = ExecutionContext(device)
    estimate_model(fused, CFG, FUSED_MHA, LENS, 256)
    return base.elapsed_us() / fused.elapsed_us()


class TestSweepMechanics:
    def test_scale_one_reproduces_baseline(self):
        result = sensitivity_sweep(
            "dram_bandwidth_gbs", byte_gain, scales=(1.0,)
        )
        assert result.points[0].metric == pytest.approx(
            result.baseline_metric
        )

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="not sweepable"):
            sensitivity_sweep("warp_size", byte_gain)

    def test_empty_scales_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            sensitivity_sweep("num_sms", byte_gain, scales=())

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            sensitivity_sweep("num_sms", byte_gain, scales=(-1.0,))

    def test_integer_fields_stay_integer(self):
        result = sensitivity_sweep("num_sms", byte_gain, scales=(0.5, 1.5))
        for p in result.points:
            assert p.value == int(p.value)

    def test_formatting(self):
        result = sensitivity_sweep(
            "kernel_launch_overhead_us", byte_gain, scales=(0.5, 2.0)
        )
        text = format_sweep(result)
        assert "sensitivity" in text and "metric range" in text


class TestValueSweepCore:
    """The generic scalar core shared with the policy-knob sweeps."""

    def test_sweeps_arbitrary_scalar(self):
        result = value_sensitivity_sweep(
            "budget", 100.0, lambda v: v * 2.0, scales=(0.5, 1.0, 2.0)
        )
        assert result.field == "budget"
        assert result.baseline_metric == 200.0
        assert [p.metric for p in result.points] == [100.0, 200.0, 400.0]

    def test_single_point_sweep_is_degenerate_but_valid(self):
        result = value_sensitivity_sweep(
            "x", 10.0, lambda v: v, scales=(1.0,)
        )
        lo, hi = result.metric_range
        assert lo == hi == result.baseline_metric
        assert result.max_relative_change() == pytest.approx(0.0)

    def test_integral_rounds_and_floors_at_one(self):
        seen = []

        def metric(v):
            seen.append(v)
            return float(v)

        result = value_sensitivity_sweep(
            "n", 3, metric, scales=(0.1, 0.5, 1.0), integral=True
        )
        # 0.3 -> 1 (floored), 1.5 -> 2 (rounded), 3.0 -> 3
        assert [p.value for p in result.points] == [1.0, 2.0, 3.0]
        assert all(v == int(v) for v in seen[1:])

    def test_empty_scales_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            value_sensitivity_sweep("x", 1.0, lambda v: v, scales=())

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            value_sensitivity_sweep("x", 1.0, lambda v: v, scales=(0.0,))

    def test_zero_baseline_metric_has_no_relative_change(self):
        result = value_sensitivity_sweep(
            "x", 1.0, lambda v: v - 1.0, scales=(1.0, 2.0)
        )
        with pytest.raises(ValueError, match="baseline metric is zero"):
            result.max_relative_change()


class TestRobustness:
    """The headline conclusion — ByteTransformer beats its padded
    baseline — must survive 2x perturbations of every swept constant."""

    @pytest.mark.parametrize("field", SWEEPABLE_FIELDS)
    def test_gain_survives_2x_perturbations(self, field):
        result = sensitivity_sweep(field, byte_gain, scales=(0.5, 1.0, 2.0))
        assert result.conclusion_stable(lambda gain: gain > 1.0), (
            field,
            result.metric_range,
        )

    def test_launch_overhead_moves_the_gain(self):
        """Higher launch overhead favours the fused engine (fewer
        launches), so the gain must grow with it."""
        result = sensitivity_sweep(
            "kernel_launch_overhead_us", byte_gain, scales=(0.25, 1.0, 4.0)
        )
        metrics = [p.metric for p in result.points]
        assert metrics == sorted(metrics)

    def test_max_relative_change_reported(self):
        result = sensitivity_sweep(
            "dram_bandwidth_gbs", byte_gain, scales=(0.5, 2.0)
        )
        assert result.max_relative_change() >= 0.0
