"""Tests for the priced interconnect: collective cost model + guards."""

import numpy as np
import pytest

from repro.gpusim import (
    A100_SPEC,
    NVLINK3_LINK,
    PCIE4_LINK,
    ClusterSpec,
    ExecutionContext,
    LinkSpec,
    all_gather_launch,
    all_reduce_launch,
    choose_all_reduce_algo,
    collective_time_us,
    crossover_bytes,
    gather_launch,
    make_cluster,
    scatter_launch,
)
from repro.gpusim.errors import LaunchConfigError, TransientFault
from repro.gpusim.graph import LaunchGraph, capture
from repro.gpusim.interconnect import (
    all_gather_us,
    p2p_us,
    ring_all_reduce_us,
    tree_all_reduce_us,
)

CLUSTER8 = make_cluster(8)
MB = 1 << 20


# ----------------------------------------------------------------------
# cost-model monotonicity


@pytest.mark.parametrize(
    "fn", [ring_all_reduce_us, tree_all_reduce_us, all_gather_us, p2p_us]
)
def test_monotone_in_payload(fn):
    times = [fn(nbytes, 8, NVLINK3_LINK) for nbytes in (1, MB, 16 * MB)]
    assert times == sorted(times)
    assert times[0] < times[-1]


@pytest.mark.parametrize(
    "fn", [ring_all_reduce_us, tree_all_reduce_us, all_gather_us, p2p_us]
)
def test_monotone_in_devices(fn):
    times = [fn(4 * MB, d, NVLINK3_LINK) for d in (2, 4, 8, 16)]
    assert times == sorted(times)
    assert times[0] < times[-1]


def test_slower_link_costs_more():
    assert ring_all_reduce_us(4 * MB, 8, PCIE4_LINK) > ring_all_reduce_us(
        4 * MB, 8, NVLINK3_LINK
    )


# ----------------------------------------------------------------------
# ring/tree crossover


def test_crossover_separates_the_regimes():
    bytes_at = crossover_bytes(8, NVLINK3_LINK)
    assert 0.0 < bytes_at < float("inf")
    below, above = int(bytes_at / 2), int(bytes_at * 2)
    assert tree_all_reduce_us(below, 8, NVLINK3_LINK) < ring_all_reduce_us(
        below, 8, NVLINK3_LINK
    )
    assert ring_all_reduce_us(above, 8, NVLINK3_LINK) < tree_all_reduce_us(
        above, 8, NVLINK3_LINK
    )


def test_choose_algo_matches_crossover():
    bytes_at = crossover_bytes(8, NVLINK3_LINK)
    assert choose_all_reduce_algo(int(bytes_at / 2), 8, NVLINK3_LINK) == "tree"
    assert choose_all_reduce_algo(int(bytes_at * 2), 8, NVLINK3_LINK) == "ring"


def test_ring_always_wins_at_two_devices():
    # N=2: identical hop counts and the ring moves half the data
    assert crossover_bytes(2, NVLINK3_LINK) == 0.0
    for nbytes in (1, MB, 64 * MB):
        assert choose_all_reduce_algo(nbytes, 2, NVLINK3_LINK) == "ring"


def test_auto_algo_resolved_at_build_time_deterministically():
    # "auto" resolves when the descriptor is built, so a seeded chaos
    # replay can never flip ring vs tree between attempts
    nbytes = int(crossover_bytes(8, NVLINK3_LINK) * 2)
    launches = [all_reduce_launch(nbytes, CLUSTER8) for _ in range(5)]
    assert {l.comm_algo for l in launches} == {"ring"}
    assert {l.name for l in launches} == {"allreduce_ring"}


# ----------------------------------------------------------------------
# pricing through the execution context


def test_collective_priced_into_the_stream():
    ctx = ExecutionContext(A100_SPEC, cluster=CLUSTER8)
    launch = all_reduce_launch(4 * MB, CLUSTER8)
    ctx.launch(launch)
    assert ctx.elapsed_us() > 0.0
    assert ctx.records[-1].launch is launch
    assert ctx.records[-1].launch.is_collective
    expected = collective_time_us(launch, CLUSTER8)
    assert ctx.records[-1].time_us == expected


def test_collective_without_cluster_is_a_config_error():
    ctx = ExecutionContext(A100_SPEC)
    with pytest.raises(LaunchConfigError):
        ctx.launch(all_reduce_launch(MB, CLUSTER8))


def test_collective_larger_than_cluster_rejected():
    small = make_cluster(2)
    launch = all_reduce_launch(MB, CLUSTER8)  # 8-device collective
    with pytest.raises(LaunchConfigError):
        collective_time_us(launch, small)


@pytest.mark.parametrize(
    "build", [all_gather_launch, scatter_launch, gather_launch]
)
def test_other_collectives_price(build):
    ctx = ExecutionContext(A100_SPEC, cluster=CLUSTER8)
    ctx.launch(build(4 * MB, CLUSTER8))
    assert ctx.elapsed_us() > 0.0


def test_launch_hook_fires_on_collectives():
    """Chaos must be able to hit comm kernels like compute kernels."""
    seen: list[str] = []
    attempts = {"n": 0}

    def hook(launch, ordinal):
        seen.append(launch.name)
        if launch.name.startswith("allreduce"):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise TransientFault("injected collective failure")
        return 1.0

    ctx = ExecutionContext(A100_SPEC, cluster=CLUSTER8)
    ctx.launch_hook = hook
    launch = all_reduce_launch(4 * MB, CLUSTER8)
    with pytest.raises(TransientFault):
        ctx.launch(launch)
    ctx.launch(launch)  # the retry succeeds
    assert attempts["n"] == 2
    assert all(name.startswith("allreduce") for name in seen)


# ----------------------------------------------------------------------
# cross-topology graph replay guard


def test_single_device_capture_cannot_replay_on_cluster():
    launch = all_reduce_launch(MB, CLUSTER8)

    def body(ctx):
        ctx.launch(launch)

    graph, _ = capture(A100_SPEC, body, cluster=CLUSTER8)
    ctx = ExecutionContext(A100_SPEC)  # single device: no interconnect
    with pytest.raises(ValueError, match="topology"):
        graph.replay(ctx)


def test_cluster_mismatch_rejected_both_ways():
    def body(ctx):
        pass

    single, _ = capture(A100_SPEC, body)
    four, _ = capture(A100_SPEC, body, cluster=make_cluster(4))
    with pytest.raises(ValueError, match="topology"):
        single.replay(ExecutionContext(A100_SPEC, cluster=CLUSTER8))
    with pytest.raises(ValueError, match="topology"):
        four.replay(ExecutionContext(A100_SPEC, cluster=CLUSTER8))
    # the matching topology replays fine
    four.replay(ExecutionContext(A100_SPEC, cluster=make_cluster(4)))


# ----------------------------------------------------------------------
# spec validation


def test_cluster_spec_validation():
    with pytest.raises(ValueError):
        make_cluster(1)
    with pytest.raises(ValueError):
        LinkSpec("bad", bandwidth_gbs=-1.0, latency_us=1.0)


def test_duplex_bandwidth_applies_efficiency():
    assert NVLINK3_LINK.duplex_bandwidth_gbs == pytest.approx(
        NVLINK3_LINK.bandwidth_gbs * NVLINK3_LINK.bidirectional_efficiency
    )
