"""Launch-graph capture & replay: bit identity, caching, fault hooks."""

import numpy as np
import pytest

from repro.gpusim import A100_SPEC, V100_SPEC, ExecutionContext, KernelLaunch
from repro.gpusim.errors import LaunchFailure
from repro.gpusim.graph import GraphCache, LaunchGraph, capture
from repro.serving.faults import FaultPlan, FaultSpec


def launch(name="k", grid=64, flops=1e6):
    return KernelLaunch(
        name=name, category="test", grid=grid, block_threads=128,
        flops=flops, dram_bytes=1e5,
    )


def stream_fn(ctx):
    """A small deterministic launch stream (distinct shapes/names)."""
    for i in range(6):
        ctx.launch(launch(name=f"k{i}", grid=32 + 16 * i, flops=1e6 * (i + 1)))
    return "payload"


def records_identical(a, b):
    return (
        len(a) == len(b)
        and all(
            ra.launch == rb.launch
            and ra.time_us == rb.time_us
            and ra.start_us == rb.start_us
            for ra, rb in zip(a, b)
        )
    )


class TestCaptureReplay:
    def test_replay_is_bit_identical_to_eager(self):
        eager = ExecutionContext(A100_SPEC)
        stream_fn(eager)

        graph, result = capture(A100_SPEC, stream_fn)
        assert result == "payload"
        replayed = ExecutionContext(A100_SPEC)
        delta = graph.replay(replayed)

        assert records_identical(eager.records, replayed.records)
        assert replayed.elapsed_us() == eager.elapsed_us()
        assert delta == graph.modelled_us == eager.elapsed_us()

    def test_replay_into_accumulated_context_matches_eager(self):
        # same prior history on both contexts -> bit-equal continuation,
        # including start_us offsets
        prior = launch(name="warmup", grid=8)
        eager = ExecutionContext(A100_SPEC)
        eager.launch(prior)
        stream_fn(eager)

        graph, _ = capture(A100_SPEC, stream_fn)
        replayed = ExecutionContext(A100_SPEC)
        replayed.launch(prior)
        graph.replay(replayed)

        assert records_identical(eager.records, replayed.records)

    def test_wrong_device_rejected(self):
        graph, _ = capture(A100_SPEC, stream_fn)
        with pytest.raises(ValueError, match="cannot replay"):
            graph.replay(ExecutionContext(V100_SPEC))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="launches but"):
            LaunchGraph(
                device=A100_SPEC, launches=(launch(),), times_us=(1.0, 2.0)
            )

    def test_capture_context_is_hook_free(self):
        # a hook on the caller's context must not leak into capture: the
        # cached times are clean base times
        caller = ExecutionContext(A100_SPEC)
        caller.launch_hook = lambda launch, index: 100.0
        graph, _ = capture(caller.device, stream_fn)
        clean = ExecutionContext(A100_SPEC)
        stream_fn(clean)
        assert graph.times_us == tuple(r.time_us for r in clean.records)


class TestHookComposition:
    def test_slow_hook_scales_replayed_launches(self):
        graph, _ = capture(A100_SPEC, stream_fn)
        ctx = ExecutionContext(A100_SPEC)
        ctx.launch_hook = lambda launch, index: 3.0
        graph.replay(ctx)
        assert tuple(r.time_us for r in ctx.records) == tuple(
            t * 3.0 for t in graph.times_us
        )

    def test_fault_plan_parity_eager_vs_replay(self):
        # the same seeded plan injects the same fault sequence whether
        # the stream is executed eagerly or replayed from a graph
        spec = FaultSpec(slow_rate=0.5, slow_factor=4.0)

        eager = ExecutionContext(A100_SPEC)
        eager_plan = FaultPlan(spec, seed=7)
        eager_plan.install(eager)
        stream_fn(eager)

        graph, _ = capture(A100_SPEC, stream_fn)
        replayed = ExecutionContext(A100_SPEC)
        replay_plan = FaultPlan(spec, seed=7)
        replay_plan.install(replayed)
        graph.replay(replayed)

        assert replay_plan.injected == eager_plan.injected
        assert records_identical(eager.records, replayed.records)

    def test_mid_replay_fault_leaves_partial_timeline_and_intact_graph(self):
        graph, _ = capture(A100_SPEC, stream_fn)
        before = (graph.launches, graph.times_us)

        fail_at = 3

        def hook(launch, index):
            if index == fail_at:
                raise LaunchFailure("boom")
            return 1.0

        ctx = ExecutionContext(A100_SPEC)
        ctx.launch_hook = hook
        with pytest.raises(LaunchFailure):
            graph.replay(ctx)

        # timeline consistent up to the fault, nothing after it
        assert len(ctx.records) == fail_at
        assert ctx.elapsed_us() == sum(graph.times_us[:fail_at])
        # the frozen graph is untouched: a clean retry replays in full
        assert (graph.launches, graph.times_us) == before
        retry = ExecutionContext(A100_SPEC)
        assert graph.replay(retry) == graph.modelled_us


class TestGraphCache:
    def test_counters_and_hit_path(self):
        cache = GraphCache()
        calls = []

        def fn(ctx):
            calls.append(1)
            return stream_fn(ctx)

        # fresh same-history contexts: the returned deltas are bit-equal
        # (on one accumulating context only the *records* stay identical;
        # the delta re-derives from a different floating-point base)
        t0 = cache.replay_or_capture("key", ExecutionContext(A100_SPEC), fn)
        t1 = cache.replay_or_capture("key", ExecutionContext(A100_SPEC), fn)
        assert calls == [1]  # a hit never re-runs fn
        assert t0 == t1
        assert (cache.hits, cache.misses, cache.evictions) == (1, 1, 0)
        assert len(cache) == 1

    def test_lru_eviction(self):
        cache = GraphCache(capacity=2)
        graph, _ = capture(A100_SPEC, stream_fn)
        cache.put("a", graph)
        cache.put("b", graph)
        assert cache.get("a") is graph  # refresh "a": now "b" is LRU
        cache.put("c", graph)
        assert cache.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") is graph and cache.get("c") is graph

    def test_distinct_keys_capture_separately(self):
        cache = GraphCache()
        ctx = ExecutionContext(A100_SPEC)
        short = lambda c: c.launch(launch(name="solo"))  # noqa: E731
        cache.replay_or_capture("long", ctx, stream_fn)
        cache.replay_or_capture("short", ctx, short)
        assert cache.misses == 2 and len(cache) == 2
        assert len(cache.get("long")) == 6
        assert len(cache.get("short")) == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="positive"):
            GraphCache(capacity=0)

    def test_clear_resets_counters(self):
        cache = GraphCache()
        ctx = ExecutionContext(A100_SPEC)
        cache.replay_or_capture("key", ctx, stream_fn)
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)


class TestModelledUs:
    def test_modelled_us_matches_incremental_elapsed(self):
        # modelled_us must be the *incremental* sum so it equals
        # elapsed_us of a hook-free replay bit for bit
        rng = np.random.default_rng(0)
        times = tuple(float(t) for t in rng.uniform(0.3, 7.0, size=40))
        graph = LaunchGraph(
            device=A100_SPEC,
            launches=tuple(launch(name=f"k{i}") for i in range(40)),
            times_us=times,
        )
        ctx = ExecutionContext(A100_SPEC)
        graph.replay(ctx)
        assert ctx.elapsed_us() == graph.modelled_us
