"""ExecutionContext recording, ambient-context management, merging."""

import pytest

from repro.gpusim import (
    A100_SPEC,
    V100_SPEC,
    ExecutionContext,
    KernelLaunch,
    NullContext,
    current_context,
    use_context,
)
from repro.gpusim.stream import resolve_context


def launch(name="k", flops=1e9):
    return KernelLaunch(
        name=name, category="c", grid=256, block_threads=256, flops=flops
    )


class TestRecording:
    def test_launch_appends_record(self):
        ctx = ExecutionContext()
        record = ctx.launch(launch())
        assert ctx.kernel_count() == 1
        assert record.time_us > 0
        assert ctx.records[0] is record

    def test_elapsed_is_sum_of_records(self):
        ctx = ExecutionContext()
        for _ in range(5):
            ctx.launch(launch())
        assert ctx.elapsed_us() == pytest.approx(
            sum(r.time_us for r in ctx.records)
        )

    def test_timeline_is_contiguous(self):
        ctx = ExecutionContext()
        a = ctx.launch(launch("a"))
        b = ctx.launch(launch("b"))
        assert a.start_us == 0.0
        assert b.start_us == pytest.approx(a.end_us)

    def test_totals(self):
        ctx = ExecutionContext()
        ctx.launch(launch(flops=1e9))
        ctx.launch(launch(flops=2e9))
        assert ctx.total_flops() == pytest.approx(3e9)

    def test_reset(self):
        ctx = ExecutionContext()
        ctx.launch(launch())
        ctx.reset()
        assert ctx.kernel_count() == 0
        assert ctx.elapsed_us() == 0.0

    def test_device_affects_time(self):
        fast = ExecutionContext(A100_SPEC)
        slow = ExecutionContext(V100_SPEC)
        big = launch(flops=1e11)
        fast.launch(big)
        slow.launch(big)
        assert fast.elapsed_us() < slow.elapsed_us()


class TestMergeFork:
    def test_fork_same_device(self):
        ctx = ExecutionContext(V100_SPEC)
        assert ctx.fork().device is V100_SPEC

    def test_merge_appends_and_shifts(self):
        main = ExecutionContext()
        main.launch(launch("first"))
        shift = main.elapsed_us()

        sub = main.fork()
        sub.launch(launch("second"))

        main.merge(sub)
        assert main.kernel_count() == 2
        assert main.records[1].start_us == pytest.approx(shift)
        assert main.elapsed_us() == pytest.approx(
            shift + sub.elapsed_us()
        )


class TestAmbientContext:
    def test_no_context_by_default(self):
        assert current_context() is None

    def test_use_context_sets_and_restores(self):
        ctx = ExecutionContext()
        with use_context(ctx) as active:
            assert active is ctx
            assert current_context() is ctx
        assert current_context() is None

    def test_nesting(self):
        outer, inner = ExecutionContext(), ExecutionContext()
        with use_context(outer):
            with use_context(inner):
                assert current_context() is inner
            assert current_context() is outer

    def test_restored_after_exception(self):
        ctx = ExecutionContext()
        with pytest.raises(RuntimeError):
            with use_context(ctx):
                raise RuntimeError("boom")
        assert current_context() is None

    def test_resolve_prefers_explicit(self):
        explicit, ambient = ExecutionContext(), ExecutionContext()
        with use_context(ambient):
            assert resolve_context(explicit) is explicit
            assert resolve_context(None) is ambient

    def test_resolve_falls_back_to_null(self):
        assert isinstance(resolve_context(None), NullContext)


class TestNullContext:
    def test_records_nothing_cost_free(self):
        ctx = NullContext()
        record = ctx.launch(launch())
        assert record.time_us == 0.0
        assert ctx.elapsed_us() == 0.0
