"""Profiler aggregation by kernel category."""

import pytest

from repro.gpusim import ExecutionContext, KernelLaunch, ProfileReport


def launch(category, flops=1e9, dram=1e6):
    return KernelLaunch(
        name=f"k_{category}",
        category=category,
        grid=256,
        block_threads=256,
        flops=flops,
        dram_bytes=dram,
    )


@pytest.fixture()
def profiled_ctx():
    ctx = ExecutionContext()
    ctx.launch(launch("gemm0", flops=5e9))
    ctx.launch(launch("attention", flops=2e9))
    ctx.launch(launch("attention", flops=2e9))
    ctx.launch(launch("layernorm0", flops=1e8))
    return ctx


class TestAggregation:
    def test_categories_collected(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        assert set(report.categories) == {"gemm0", "attention", "layernorm0"}

    def test_launch_counts(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        assert report.categories["attention"].launches == 2
        assert report.categories["gemm0"].launches == 1

    def test_total_matches_context(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        assert report.total_us == pytest.approx(profiled_ctx.elapsed_us())

    def test_flops_aggregated(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        assert report.categories["attention"].flops == pytest.approx(4e9)

    def test_fractions_sum_to_one(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        assert sum(report.fractions().values()) == pytest.approx(1.0)

    def test_fraction_of_missing_category_is_zero(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        assert report.fraction("does_not_exist") == 0.0

    def test_empty_context(self):
        report = ProfileReport.from_context(ExecutionContext())
        assert report.total_us == 0.0
        assert report.fraction("anything") == 0.0

    def test_sorted_by_time(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        times = [c.time_us for c in report.sorted_categories()]
        assert times == sorted(times, reverse=True)


class TestRendering:
    def test_table_contains_categories_and_title(self, profiled_ctx):
        table = ProfileReport.from_context(profiled_ctx).to_table("unit test")
        assert "unit test" in table
        assert "attention" in table
        assert "gemm0" in table

    def test_table_row_count(self, profiled_ctx):
        table = ProfileReport.from_context(profiled_ctx).to_table()
        # header x2 + one row per category
        assert len(table.splitlines()) == 2 + 3
