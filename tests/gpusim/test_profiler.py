"""Profiler aggregation by kernel category."""

import pytest

from repro.gpusim import ExecutionContext, KernelLaunch, ProfileReport


def launch(category, flops=1e9, dram=1e6):
    return KernelLaunch(
        name=f"k_{category}",
        category=category,
        grid=256,
        block_threads=256,
        flops=flops,
        dram_bytes=dram,
    )


@pytest.fixture()
def profiled_ctx():
    ctx = ExecutionContext()
    ctx.launch(launch("gemm0", flops=5e9))
    ctx.launch(launch("attention", flops=2e9))
    ctx.launch(launch("attention", flops=2e9))
    ctx.launch(launch("layernorm0", flops=1e8))
    return ctx


class TestAggregation:
    def test_categories_collected(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        assert set(report.categories) == {"gemm0", "attention", "layernorm0"}

    def test_launch_counts(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        assert report.categories["attention"].launches == 2
        assert report.categories["gemm0"].launches == 1

    def test_total_matches_context(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        assert report.total_us == pytest.approx(profiled_ctx.elapsed_us())

    def test_flops_aggregated(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        assert report.categories["attention"].flops == pytest.approx(4e9)

    def test_fractions_sum_to_one(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        assert sum(report.fractions().values()) == pytest.approx(1.0)

    def test_fraction_of_missing_category_is_zero(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        assert report.fraction("does_not_exist") == 0.0

    def test_empty_context(self):
        report = ProfileReport.from_context(ExecutionContext())
        assert report.total_us == 0.0
        assert report.fraction("anything") == 0.0

    def test_sorted_by_time(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        times = [c.time_us for c in report.sorted_categories()]
        assert times == sorted(times, reverse=True)


class TestRendering:
    def test_table_contains_categories_and_title(self, profiled_ctx):
        table = ProfileReport.from_context(profiled_ctx).to_table("unit test")
        assert "unit test" in table
        assert "attention" in table
        assert "gemm0" in table

    def test_table_row_count(self, profiled_ctx):
        table = ProfileReport.from_context(profiled_ctx).to_table()
        # header x2 + one row per category
        assert len(table.splitlines()) == 2 + 3

    def test_columns_align_with_long_category_names(self):
        # "decode_attention" (16 chars) next to "collective" used to
        # shear the table: every data line must share one width
        ctx = ExecutionContext()
        ctx.launch(launch("decode_attention", flops=2e9))
        ctx.launch(launch("collective", flops=0.0, dram=4e8))
        ctx.launch(launch("gemm0", flops=5e9))
        table = ProfileReport.from_context(ctx).to_table()
        header, *rows = table.splitlines()[1:]
        assert len({len(r) for r in rows}) == 1
        assert all(len(r) == len(header) for r in rows)
        # category column is wide enough that values never touch names
        for r in rows:
            name = r.split()[0]
            assert r[len(name)] == " "


class FakeSegment:
    def __init__(self, device, records):
        self.device = device
        self.records = records


def segment(device, *categories):
    ctx = ExecutionContext()
    for cat in categories:
        ctx.launch(launch(cat))
    return FakeSegment(device, list(ctx.records))


class TestPerDevice:
    def test_from_segments_matches_flat_aggregation(self):
        segments = [
            segment(0, "gemm0", "attention"),
            segment(1, "gemm0"),
        ]
        report = ProfileReport.from_segments(segments)
        flat_time = sum(
            r.time_us for s in segments for r in s.records
        )
        assert report.total_us == pytest.approx(flat_time)
        assert report.categories["gemm0"].launches == 2

    def test_device_subtotal_rows_rendered(self):
        report = ProfileReport.from_segments(
            [segment(0, "gemm0", "attention"), segment(1, "attention")]
        )
        table = report.to_table()
        assert "-- device 0" in table
        assert "-- device 1" in table
        # subtotal shares sum to 1 across devices
        shares = [
            sum(p.time_us for p in per_dev.values())
            for per_dev in report.device_categories.values()
        ]
        assert sum(shares) == pytest.approx(report.total_us)

    def test_single_device_report_has_no_subtotal_rows(self):
        report = ProfileReport.from_segments([segment(0, "gemm0")])
        assert "-- device" not in report.to_table()

    def test_from_context_leaves_device_split_empty(self, profiled_ctx):
        report = ProfileReport.from_context(profiled_ctx)
        assert report.device_categories == {}


class TestCacheKinds:
    def test_kind_accessor_defaults_to_zero(self):
        from repro.gpusim.profiler import CacheStats

        stats = CacheStats(
            name="graph", hits=3, misses=1, evictions=0, size=1,
            captures=2, replays=10,
            kind_counts={"tile": {"captures": 2, "replays": 10}},
        )
        assert stats.kind("tile") == {"captures": 2, "replays": 10}
        assert stats.kind("decode") == {"captures": 0, "replays": 0}

    def test_decode_graph_cache_reports_decode_kind(self):
        from repro.core.config import BertConfig
        from repro.gpusim.profiler import CacheStats
        from repro.serving.generation import GenerationRuntime
        from repro.workloads.serving import make_generation_trace

        runtime = GenerationRuntime(
            BertConfig(num_heads=4, head_size=16, num_layers=2),
            seed=3,
            compute_outputs=False,
        )
        runtime.run(make_generation_trace(4, 64, decode_tokens=4, seed=3))
        stats = CacheStats.from_cache("graph", runtime.graph_cache)
        decode = stats.kind("decode")
        assert decode["captures"] >= 1
        assert decode["replays"] >= 1
