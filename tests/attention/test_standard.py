"""PyTorch-style MHA baseline."""

import numpy as np
import pytest

from repro.attention.standard import standard_mha, standard_mha_launches
from repro.gpusim import ComputeUnit, ExecutionContext

from tests.attention.conftest import assert_matches_oracle


class TestNumerics:
    def test_matches_oracle(
        self, qkv_padded, small_layer, small_config, small_batch, mha_oracle, valid
    ):
        out = standard_mha(
            qkv_padded,
            small_layer.qkv_bias,
            small_batch.batch,
            small_batch.max_seq_len,
            small_config.num_heads,
            small_batch.mask,
        )
        out = out.reshape(mha_oracle.shape)
        assert_matches_oracle(out, mha_oracle, valid)


class TestKernelChain:
    def test_ten_launches(
        self, qkv_padded, small_layer, small_config, small_batch
    ):
        ctx = ExecutionContext()
        standard_mha(
            qkv_padded,
            small_layer.qkv_bias,
            small_batch.batch,
            small_batch.max_seq_len,
            small_config.num_heads,
            small_batch.mask,
            ctx=ctx,
        )
        assert ctx.kernel_count() == 10

    def test_chain_matches_builder(
        self, qkv_padded, small_layer, small_config, small_batch
    ):
        ctx = ExecutionContext()
        standard_mha(
            qkv_padded,
            small_layer.qkv_bias,
            small_batch.batch,
            small_batch.max_seq_len,
            small_config.num_heads,
            small_batch.mask,
            ctx=ctx,
        )
        built = standard_mha_launches(
            small_batch.batch,
            small_batch.max_seq_len,
            small_config.num_heads,
            small_config.hidden_size,
        )
        assert [r.launch for r in ctx.records] == built

    def test_everything_runs_fp32(self, small_config):
        launches = standard_mha_launches(4, 64, small_config.num_heads, 64)
        assert all(l.compute_unit is ComputeUnit.FP32 for l in launches)

    def test_superlinear_traffic_growth(self, small_config):
        """The quadratic score-tensor passes push traffic well past the
        2x a purely linear pipeline would show for 2x sequence length."""
        short = standard_mha_launches(8, 128, 12, 768)
        long = standard_mha_launches(8, 256, 12, 768)
        short_bytes = sum(l.dram_bytes + l.hot_bytes for l in short)
        long_bytes = sum(l.dram_bytes + l.hot_bytes for l in long)
        assert long_bytes > 2.5 * short_bytes


class TestValidation:
    def test_row_mismatch(self, qkv_padded, small_layer, small_batch, small_config):
        with pytest.raises(ValueError, match="rows"):
            standard_mha(
                qkv_padded[:-1],
                small_layer.qkv_bias,
                small_batch.batch,
                small_batch.max_seq_len,
                small_config.num_heads,
                small_batch.mask,
            )

    def test_mask_shape(self, qkv_padded, small_layer, small_batch, small_config):
        with pytest.raises(ValueError, match="mask"):
            standard_mha(
                qkv_padded,
                small_layer.qkv_bias,
                small_batch.batch,
                small_batch.max_seq_len,
                small_config.num_heads,
                small_batch.mask[:, :-1],
            )
