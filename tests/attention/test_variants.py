"""cuBLAS / zero-padding / fused MHA variants vs the oracle."""

import numpy as np
import pytest

from repro.attention.dispatch import byte_mha
from repro.attention.fused_long import fused_long_mha
from repro.attention.fused_short import (
    SHORT_KERNEL_MAX_SEQ,
    fused_short_mha,
    short_kernel_shared_mem,
    supports,
)
from repro.attention.unfused_cublas import unfused_cublas_mha
from repro.attention.zeropad_softmax_mha import zeropad_softmax_mha
from repro.core.padding import unpack
from repro.gpusim import ExecutionContext
from repro.kernels.grouped_gemm import SchedulerKind

from tests.attention.conftest import assert_matches_oracle


class TestUnfusedCublas:
    def test_matches_oracle(
        self, qkv_padded, small_layer, small_config, small_batch, mha_oracle, valid
    ):
        out = unfused_cublas_mha(
            qkv_padded,
            small_layer.qkv_bias,
            small_batch.batch,
            small_batch.max_seq_len,
            small_config.num_heads,
            small_batch.mask,
        ).reshape(mha_oracle.shape)
        assert_matches_oracle(out, mha_oracle, valid)

    def test_five_launches(
        self, qkv_padded, small_layer, small_config, small_batch
    ):
        ctx = ExecutionContext()
        unfused_cublas_mha(
            qkv_padded,
            small_layer.qkv_bias,
            small_batch.batch,
            small_batch.max_seq_len,
            small_config.num_heads,
            small_batch.mask,
            ctx=ctx,
        )
        assert ctx.kernel_count() == 5

    def test_faster_than_pytorch(
        self, qkv_padded, small_layer, small_config, small_batch
    ):
        from repro.attention.standard import standard_mha

        args = (
            qkv_padded,
            small_layer.qkv_bias,
            small_batch.batch,
            small_batch.max_seq_len,
            small_config.num_heads,
            small_batch.mask,
        )
        slow = ExecutionContext()
        standard_mha(*args, ctx=slow)
        fast = ExecutionContext()
        unfused_cublas_mha(*args, ctx=fast)
        assert fast.elapsed_us() < slow.elapsed_us()


class TestZeropadSoftmaxMha:
    def test_matches_oracle(
        self,
        qkv_packed,
        small_layer,
        small_config,
        small_packing,
        mha_oracle,
        valid,
        small_batch,
    ):
        packed_out = zeropad_softmax_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
        )
        out = unpack(packed_out, small_packing).reshape(mha_oracle.shape)
        assert_matches_oracle(out, mha_oracle, valid)

    def test_packed_row_count_checked(
        self, qkv_packed, small_layer, small_config, small_packing
    ):
        with pytest.raises(ValueError, match="packed rows"):
            zeropad_softmax_mha(
                qkv_packed[:-1],
                small_layer.qkv_bias,
                small_packing,
                small_config.num_heads,
            )


class TestFusedShort:
    def test_matches_oracle(
        self,
        qkv_packed,
        small_layer,
        small_config,
        small_packing,
        mha_oracle,
        valid,
    ):
        packed_out = fused_short_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
        )
        out = unpack(packed_out, small_packing).reshape(mha_oracle.shape)
        assert_matches_oracle(out, mha_oracle, valid)

    def test_single_kernel(
        self, qkv_packed, small_layer, small_config, small_packing
    ):
        ctx = ExecutionContext()
        fused_short_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
            ctx=ctx,
        )
        assert ctx.kernel_count() == 1
        assert ctx.records[0].launch.name == "fused_mha_short"

    def test_split_seq_len_does_not_change_numerics(
        self, qkv_packed, small_layer, small_config, small_packing
    ):
        a = fused_short_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
            split_seq_len=16,
        )
        b = fused_short_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
            split_seq_len=48,
        )
        np.testing.assert_array_equal(a, b)

    def test_resource_limits(self):
        assert supports(256, 64)
        assert supports(384, 64)
        assert not supports(512, 64)
        assert not supports(SHORT_KERNEL_MAX_SEQ + 1, 64)

    def test_shared_memory_includes_skew(self):
        # the skew padding must appear in the footprint
        with_skew = short_kernel_shared_mem(128, 64, 32)
        assert with_skew > (128 * 64 + 32 * 64 + 32 * 128) * 2

    def test_rejects_long_sequences(
        self, small_config, small_layer, rng
    ):
        from repro.core.padding import packing_from_lengths

        packing = packing_from_lengths([500], 512)
        qkv = rng.normal(
            size=(500, 3 * small_config.hidden_size)
        ).astype(np.float32)
        with pytest.raises(ValueError, match="does not support"):
            fused_short_mha(
                qkv,
                small_layer.qkv_bias,
                packing,
                small_config.num_heads,
            )


class TestFusedLong:
    def test_matches_oracle(
        self,
        qkv_packed,
        small_layer,
        small_config,
        small_packing,
        mha_oracle,
        valid,
    ):
        packed_out = fused_long_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
        )
        out = unpack(packed_out, small_packing).reshape(mha_oracle.shape)
        assert_matches_oracle(out, mha_oracle, valid)

    def test_three_launches(
        self, qkv_packed, small_layer, small_config, small_packing
    ):
        ctx = ExecutionContext()
        fused_long_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
            ctx=ctx,
        )
        names = [r.launch.name for r in ctx.records]
        assert names == [
            "fmha_grouped_qk",
            "softmax_full_reduction",
            "fmha_grouped_pv",
        ]

    def test_scheduler_choice_keeps_numerics(
        self, qkv_packed, small_layer, small_config, small_packing
    ):
        a = fused_long_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
            scheduler=SchedulerKind.PER_THREAD,
        )
        b = fused_long_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
            scheduler=SchedulerKind.WARP_PREFETCH,
        )
        np.testing.assert_array_equal(a, b)

    def test_short_and_long_kernels_agree(
        self, qkv_packed, small_layer, small_config, small_packing
    ):
        short = fused_short_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
        )
        long = fused_long_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
        )
        np.testing.assert_allclose(short, long, rtol=1e-5, atol=1e-7)


class TestDispatch:
    def test_short_sequences_use_short_kernel(
        self, qkv_packed, small_layer, small_config, small_packing
    ):
        ctx = ExecutionContext()
        byte_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
            ctx=ctx,
        )
        assert ctx.records[0].launch.name == "fused_mha_short"

    def test_cutover_forces_long_kernel(
        self, qkv_packed, small_layer, small_config, small_packing
    ):
        ctx = ExecutionContext()
        byte_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
            short_max_seq=8,  # below this batch's max length
            ctx=ctx,
        )
        assert ctx.records[0].launch.name == "fmha_grouped_qk"

    def test_dispatch_numerics_identical(
        self, qkv_packed, small_layer, small_config, small_packing
    ):
        a = byte_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
        )
        b = byte_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
            short_max_seq=8,
        )
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-7)
