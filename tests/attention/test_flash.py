"""FlashAttention-style online softmax and its fixed-shape cost."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attention.flash import flash_mha_padded, online_softmax_attention
from repro.core.reference import reference_attention
from repro.gpusim import ExecutionContext
from repro.kernels.softmax import softmax_reference


class TestOnlineSoftmax:
    def test_matches_direct_attention(self, rng):
        q = rng.normal(size=(10, 8))
        k = rng.normal(size=(24, 8))
        v = rng.normal(size=(24, 8))
        scale = 1 / math.sqrt(8)
        direct = softmax_reference((q @ k.T) * scale) @ v
        online = online_softmax_attention(q, k, v, scale, tile_kv=8)
        np.testing.assert_allclose(online, direct, rtol=1e-10)

    @pytest.mark.parametrize("tile", [1, 3, 7, 16, 64, 1000])
    def test_tile_size_irrelevant(self, tile, rng):
        q = rng.normal(size=(6, 4))
        k = rng.normal(size=(17, 4))
        v = rng.normal(size=(17, 4))
        base = online_softmax_attention(q, k, v, 0.5, tile_kv=17)
        tiled = online_softmax_attention(q, k, v, 0.5, tile_kv=tile)
        np.testing.assert_allclose(tiled, base, rtol=1e-10)

    def test_extreme_scores_stay_finite(self):
        q = np.full((2, 4), 50.0)
        k = np.full((8, 4), 50.0)
        v = np.ones((8, 4))
        out = online_softmax_attention(q, k, v, 1.0, tile_kv=2)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, 1.0, rtol=1e-9)

    @given(
        m=st.integers(1, 8),
        n=st.integers(1, 32),
        tile=st.integers(1, 40),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_equals_direct(self, m, n, tile):
        rng = np.random.default_rng(m * 100 + n)
        q = rng.normal(size=(m, 4))
        k = rng.normal(size=(n, 4))
        v = rng.normal(size=(n, 4))
        direct = softmax_reference(q @ k.T * 0.5) @ v
        online = online_softmax_attention(q, k, v, 0.5, tile_kv=tile)
        np.testing.assert_allclose(online, direct, rtol=1e-8, atol=1e-10)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError, match="shape mismatch"):
            online_softmax_attention(
                rng.normal(size=(4, 8)),
                rng.normal(size=(6, 8)),
                rng.normal(size=(7, 8)),
                1.0,
            )


class TestFlashMha:
    def test_matches_reference_attention(self, rng):
        batch, heads, seq, hs = 2, 3, 16, 8
        q = rng.normal(size=(batch, heads, seq, hs))
        k = rng.normal(size=(batch, heads, seq, hs))
        v = rng.normal(size=(batch, heads, seq, hs))
        mask = np.zeros((batch, seq))
        mask[0, :10] = 1
        mask[1, :16] = 1
        out = flash_mha_padded(q, k, v, mask)
        ref = reference_attention(q, k, v, mask)
        for b in range(batch):
            length = int(mask[b].sum())
            np.testing.assert_allclose(
                out[b, :, :length],
                ref[b, :, :length],
                rtol=1e-4,
                atol=1e-6,
            )

    def test_padded_rows_zero(self, rng):
        q = rng.normal(size=(1, 2, 8, 4))
        mask = np.zeros((1, 8))
        mask[0, :5] = 1
        out = flash_mha_padded(q, q, q, mask)
        assert (out[0, :, 5:] == 0).all()

    def test_one_launch_one_cta_per_unit(self, rng):
        q = rng.normal(size=(2, 4, 16, 8))
        mask = np.ones((2, 16))
        ctx = ExecutionContext()
        flash_mha_padded(q, q, q, mask, ctx=ctx)
        assert ctx.kernel_count() == 1
        assert ctx.records[0].launch.grid == 2 * 4

    def test_flops_are_padded(self, rng):
        """The related-work point: FlashAttention's fixed-shape kernel
        charges full seq^2 work no matter how short the real sentences."""
        q = rng.normal(size=(2, 2, 32, 8))
        short_mask = np.zeros((2, 32))
        short_mask[:, :4] = 1
        full_mask = np.ones((2, 32))

        ctx_short = ExecutionContext()
        flash_mha_padded(q, q, q, short_mask, ctx=ctx_short)
        ctx_full = ExecutionContext()
        flash_mha_padded(q, q, q, full_mask, ctx=ctx_full)
        assert ctx_short.total_flops() == ctx_full.total_flops()

    def test_mask_shape_checked(self, rng):
        q = rng.normal(size=(2, 2, 8, 4))
        with pytest.raises(ValueError, match="mask"):
            flash_mha_padded(q, q, q, np.ones((2, 7)))
