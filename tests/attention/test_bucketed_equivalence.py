"""Looped-vs-vectorized engine equivalence for every attention variant.

The vectorized engine must be a pure *execution* change: same numbers
(``atol=1e-6``; the exact-length buckets are in fact bit-identical) and
the exact same kernel-launch stream — descriptor equality and modelled
time equality, record by record — as the seed's per-``(b, h)`` loops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attention.bucketed import bucketed_sdpa, build_buckets
from repro.attention.fused_long import fused_long_mha
from repro.attention.fused_short import fused_short_mha
from repro.attention.zeropad_softmax_mha import zeropad_softmax_mha
from repro.core.engine import LOOPED, VECTORIZED, use_engine
from repro.core.model import BertEncoderModel
from repro.core.config import STEPWISE_PRESETS, BertConfig
from repro.core.padding import packing_from_lengths
from repro.gpusim.stream import ExecutionContext
from repro.kernels.grouped_gemm import grouped_gemm
from repro.workloads.generator import make_batch

MAX_SEQ = 48
NUM_HEADS = 4
HEAD_SIZE = 16
HIDDEN = NUM_HEADS * HEAD_SIZE

# Length mixes the bucketing must survive: random draws from three
# distributions, plus the degenerate shapes (one bucket, all-singleton
# buckets, batch of one, a length-1 sentence).
LENGTH_CASES = {
    "uniform": [31, 7, 44, 18, 25, 12],
    "normal": [22, 27, 24, 30, 19, 26, 23],
    "zipf": [1, 1, 2, 3, 1, 9, 2, 48],
    "all_equal": [24, 24, 24, 24],
    "all_distinct": [5, 12, 19, 26, 33, 40, 47],
    "batch_of_one": [37],
    "length_one": [1, 48, 16],
}

VARIANTS = {
    "fused_short": fused_short_mha,
    "zeropad_softmax": zeropad_softmax_mha,
    "fused_long": fused_long_mha,
}


def _make_case(lengths, seed=0):
    packing = packing_from_lengths(
        np.asarray(lengths, dtype=np.int64), MAX_SEQ, cache=None
    )
    rng = np.random.default_rng(seed)
    qkv = rng.standard_normal(
        (packing.total_tokens, 3 * HIDDEN), dtype=np.float32
    )
    bias = rng.standard_normal(3 * HIDDEN, dtype=np.float32)
    return packing, qkv, bias


def _run(mha, qkv, bias, packing, engine):
    with use_engine(engine):
        ctx = ExecutionContext()
        out = mha(qkv.copy(), bias, packing, NUM_HEADS, ctx=ctx)
    return out, ctx.records


def _assert_records_identical(looped, vectorized):
    assert len(looped) == len(vectorized)
    for a, b in zip(looped, vectorized):
        assert a.launch == b.launch
        assert a.time_us == b.time_us


@pytest.mark.parametrize("case", sorted(LENGTH_CASES))
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_engines_agree(variant, case):
    """Same outputs (atol 1e-6) and byte-identical launch records."""
    packing, qkv, bias = _make_case(LENGTH_CASES[case])
    mha = VARIANTS[variant]
    out_loop, rec_loop = _run(mha, qkv, bias, packing, LOOPED)
    out_vec, rec_vec = _run(mha, qkv, bias, packing, VECTORIZED)
    np.testing.assert_allclose(out_vec, out_loop, rtol=0, atol=1e-6)
    _assert_records_identical(rec_loop, rec_vec)


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_exact_buckets_are_bitwise(variant):
    """bucket_step=1 reproduces the loops bit for bit, not just closely."""
    packing, qkv, bias = _make_case(LENGTH_CASES["uniform"], seed=3)
    mha = VARIANTS[variant]
    out_loop, _ = _run(mha, qkv, bias, packing, LOOPED)
    out_vec, _ = _run(mha, qkv, bias, packing, VECTORIZED)
    assert np.array_equal(out_loop, out_vec)


@pytest.mark.parametrize("step", [8, 32, 64])
def test_quantized_buckets_match_exact(step):
    """Padded+masked quantized buckets agree with exact buckets 1e-6."""
    packing, qkv, bias = _make_case(LENGTH_CASES["zipf"], seed=5)
    exact = bucketed_sdpa(qkv, bias, packing, NUM_HEADS, bucket_step=1)
    quant = bucketed_sdpa(qkv, bias, packing, NUM_HEADS, bucket_step=step)
    np.testing.assert_allclose(quant, exact, rtol=0, atol=1e-6)
    # quantization reduces the bucket count to the distinct rounded keys
    n_quant = len(build_buckets(packing, step))
    n_exact = len(build_buckets(packing, 1))
    assert n_quant <= n_exact


def test_grouped_gemm_engine_equivalence(rng):
    """Shape-bucketed batched matmul == per-problem loop, incl. launches."""
    shapes = [(9, 13, 7), (9, 13, 7), (4, 4, 4), (9, 13, 7), (17, 3, 5)]
    a_list = [rng.standard_normal((m, k)).astype(np.float32) for m, _, k in shapes]
    b_list = [rng.standard_normal((k, n)).astype(np.float32) for _, n, k in shapes]
    results = {}
    records = {}
    for engine in (LOOPED, VECTORIZED):
        with use_engine(engine):
            ctx = ExecutionContext()
            results[engine] = grouped_gemm(a_list, b_list, ctx=ctx)
            records[engine] = ctx.records
    for out_loop, out_vec in zip(results[LOOPED], results[VECTORIZED]):
        np.testing.assert_allclose(out_vec, out_loop, rtol=0, atol=1e-6)
    _assert_records_identical(records[LOOPED], records[VECTORIZED])


def test_grouped_gemm_transpose_b(rng):
    a = [rng.standard_normal((6, 8)).astype(np.float32) for _ in range(3)]
    b = [rng.standard_normal((5, 8)).astype(np.float32) for _ in range(3)]
    for engine in (LOOPED, VECTORIZED):
        with use_engine(engine):
            outs = grouped_gemm(a, b, transpose_b=True)
        for ai, bi, oi in zip(a, b, outs):
            np.testing.assert_allclose(oi, ai @ bi.T, rtol=0, atol=1e-5)


@pytest.mark.parametrize("label", ["rm padding", "fused MHA"])
def test_full_model_launch_stream_identity(label):
    """End to end: the modelled execution is engine-invariant."""
    preset = {p.label: p for p in STEPWISE_PRESETS}[label]
    config = BertConfig(num_heads=NUM_HEADS, head_size=HEAD_SIZE, num_layers=2)
    data = make_batch(5, MAX_SEQ, config.hidden_size, alpha=0.6, seed=11)
    model = BertEncoderModel(config, preset, seed=2)
    outputs = {}
    contexts = {}
    for engine in (LOOPED, VECTORIZED):
        with use_engine(engine):
            ctx = ExecutionContext()
            outputs[engine] = model.forward(data.x, data.mask, ctx=ctx)
            contexts[engine] = ctx
    np.testing.assert_allclose(
        outputs[VECTORIZED], outputs[LOOPED], rtol=0, atol=1e-6
    )
    _assert_records_identical(
        contexts[LOOPED].records, contexts[VECTORIZED].records
    )
    assert (
        contexts[LOOPED].elapsed_us() == contexts[VECTORIZED].elapsed_us()
    )
    assert (
        contexts[LOOPED].total_flops() == contexts[VECTORIZED].total_flops()
    )
