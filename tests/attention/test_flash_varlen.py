"""Varlen FlashAttention extension: numerics and cost structure."""

import numpy as np
import pytest

from repro.attention.flash_varlen import flash_varlen_launch, flash_varlen_mha
from repro.core.padding import unpack
from repro.gpusim import ExecutionContext

from tests.attention.conftest import assert_matches_oracle


class TestNumerics:
    def test_matches_oracle(
        self,
        qkv_packed,
        small_layer,
        small_config,
        small_packing,
        mha_oracle,
        valid,
    ):
        packed_out = flash_varlen_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
        )
        out = unpack(packed_out, small_packing).reshape(mha_oracle.shape)
        assert_matches_oracle(out, mha_oracle, valid)

    def test_agrees_with_fused_short(
        self, qkv_packed, small_layer, small_config, small_packing
    ):
        from repro.attention.fused_short import fused_short_mha

        a = flash_varlen_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
        )
        b = fused_short_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
        )
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-7)

    def test_row_count_checked(
        self, qkv_packed, small_layer, small_config, small_packing
    ):
        with pytest.raises(ValueError, match="packed rows"):
            flash_varlen_mha(
                qkv_packed[:-1],
                small_layer.qkv_bias,
                small_packing,
                small_config.num_heads,
            )


class TestCostStructure:
    def test_single_launch(
        self, qkv_packed, small_layer, small_config, small_packing
    ):
        ctx = ExecutionContext()
        flash_varlen_mha(
            qkv_packed,
            small_layer.qkv_bias,
            small_packing,
            small_config.num_heads,
            ctx=ctx,
        )
        assert ctx.kernel_count() == 1

    def test_flops_are_valid_only(self):
        ragged = flash_varlen_launch(np.array([100, 300]), 12, 64)
        dense = flash_varlen_launch(np.array([300, 300]), 12, 64)
        assert ragged.flops < dense.flops

    def test_no_intermediate_matrix_traffic(self):
        """Traffic must scale with tokens, not tokens^2."""
        short = flash_varlen_launch(np.array([256] * 16), 12, 64)
        long = flash_varlen_launch(np.array([1024] * 16), 12, 64)
        traffic_ratio = (long.dram_bytes + long.hot_bytes) / (
            short.dram_bytes + short.hot_bytes
        )
        assert traffic_ratio == pytest.approx(4.0, rel=0.01)

    def test_no_dispatch_needed_for_long_sequences(self):
        """Unlike Algorithm III.1 it has no max-length resource wall."""
        launch = flash_varlen_launch(np.array([4096] * 4), 12, 64)
        assert launch.shared_mem_per_block < 64 * 1024

    def test_era_dependent_verdict_vs_grouped_fmha(self):
        """At 2022-era kernel efficiency the paper's grouped FMHA holds
        its own against a varlen-flash design (consistent with the
        paper's comparisons); at FlashAttention-2-class efficiency the
        single-kernel design wins — the direction the field then took."""
        from repro.attention.flash_varlen import FA1_EFFICIENCY, FA2_EFFICIENCY
        from repro.core.config import BertConfig
        from repro.core.estimator import estimate_fused_long_mha

        lens = np.array([900, 1024, 800, 950] * 4)
        cfg = BertConfig(num_layers=1)
        grouped = ExecutionContext()
        estimate_fused_long_mha(grouped, lens, cfg)

        fa1 = ExecutionContext()
        fa1.launch(
            flash_varlen_launch(
                lens, cfg.num_heads, cfg.head_size,
                efficiency=FA1_EFFICIENCY,
            )
        )
        fa2 = ExecutionContext()
        fa2.launch(
            flash_varlen_launch(
                lens, cfg.num_heads, cfg.head_size,
                efficiency=FA2_EFFICIENCY,
            )
        )
        assert grouped.elapsed_us() < fa1.elapsed_us()
        assert fa2.elapsed_us() < grouped.elapsed_us()
