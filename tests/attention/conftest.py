"""Fixtures shared by the attention-variant tests.

Every MHA implementation receives the same QKV tensor (projection of the
batch input by the layer's packed QKV weight, *without* bias — each
variant adds the bias its own way) and must reproduce the oracle
:func:`repro.core.reference.reference_mha` on valid tokens.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.padding import pack
from repro.core.reference import reference_mha


@pytest.fixture()
def qkv_padded(small_layer, small_batch):
    flat = small_batch.x.reshape(-1, small_batch.hidden)
    return flat @ small_layer.qkv_weight


@pytest.fixture()
def qkv_packed(qkv_padded, small_packing):
    return pack(qkv_padded, small_packing)


@pytest.fixture()
def mha_oracle(small_config, small_layer, small_batch):
    """Reference attention output, padded [B, S, H]."""
    return reference_mha(
        small_batch.x, small_layer, small_config, small_batch.mask
    )


@pytest.fixture()
def valid(small_batch):
    return small_batch.mask.astype(bool)


def assert_matches_oracle(out_padded, oracle, valid_mask, rtol=1e-4):
    np.testing.assert_allclose(
        out_padded[valid_mask], oracle[valid_mask], rtol=rtol, atol=1e-5
    )
