"""Mask realignment: interior padding → packed-pipeline-compatible."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.padding import packing_from_mask
from repro.workloads.realign import realign

masks = st.lists(
    st.lists(st.integers(0, 1), min_size=3, max_size=10),
    min_size=1,
    max_size=5,
).filter(lambda rows: len({len(r) for r in rows}) == 1)


class TestRealign:
    def test_interior_holes_compacted(self):
        mask = np.array([[1, 0, 1, 0, 1]])
        result = realign(mask)
        np.testing.assert_array_equal(result.mask, [[1, 1, 1, 0, 0]])
        np.testing.assert_array_equal(result.lengths, [3])
        np.testing.assert_array_equal(
            result.source_index[0, :3], [0, 2, 4]
        )

    def test_already_aligned_is_identity(self, rng):
        mask = np.array([[1, 1, 0, 0], [1, 1, 1, 1]])
        result = realign(mask)
        np.testing.assert_array_equal(result.mask, mask)
        x = rng.normal(size=(2, 4, 3))
        x *= mask[:, :, None]
        np.testing.assert_array_equal(result.apply(x), x)

    def test_apply_gathers_tokens_in_order(self, rng):
        mask = np.array([[0, 1, 0, 1]])
        x = rng.normal(size=(1, 4, 2))
        aligned = realign(mask).apply(x)
        np.testing.assert_array_equal(aligned[0, 0], x[0, 1])
        np.testing.assert_array_equal(aligned[0, 1], x[0, 3])
        assert (aligned[0, 2:] == 0).all()

    def test_restore_inverts_apply_on_valid(self, rng):
        mask = np.array([[1, 0, 1, 1, 0], [0, 1, 1, 0, 1]])
        result = realign(mask)
        x = rng.normal(size=(2, 5, 4)) * mask[:, :, None]
        roundtrip = result.restore(result.apply(x))
        np.testing.assert_array_equal(roundtrip, x)

    def test_feeds_packing_from_mask(self):
        """The whole point: a holey mask becomes packable."""
        holey = np.array([[1, 0, 1, 1], [0, 1, 0, 1]])
        with pytest.raises(ValueError, match="interior padding"):
            packing_from_mask(holey)
        packing = packing_from_mask(realign(holey).mask)
        assert packing.total_tokens == holey.sum()

    def test_empty_row_rejected(self):
        with pytest.raises(ValueError, match="valid token"):
            realign(np.array([[0, 0], [1, 0]]))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError, match="0s and 1s"):
            realign(np.array([[2, 0]]))

    def test_shape_mismatch_in_apply(self, rng):
        result = realign(np.array([[1, 1, 0]]))
        with pytest.raises(ValueError, match="layout"):
            result.apply(rng.normal(size=(1, 4, 2)))

    @given(rows=masks)
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip_and_counts(self, rows):
        mask = np.asarray(rows)
        assume((mask.sum(axis=1) > 0).all())
        result = realign(mask)
        # counts preserved, alignment achieved
        np.testing.assert_array_equal(
            result.mask.sum(axis=1), mask.sum(axis=1)
        )
        for b, length in enumerate(result.lengths):
            assert result.mask[b, :length].all()
            assert not result.mask[b, length:].any()
        # roundtrip on a payload
        rng = np.random.default_rng(0)
        x = rng.normal(size=(*mask.shape, 2)) * mask[:, :, None]
        np.testing.assert_array_equal(
            result.restore(result.apply(x)), x
        )
