"""Online batching policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BertConfig
from repro.frameworks import ByteTransformer, PyTorchJIT
from repro.workloads.batching import (
    DEFAULT_TILES,
    BucketBatcher,
    ContinuousBatcher,
    Dispatch,
    FifoBatcher,
    TimeoutBatcher,
    TokenBudgetExceededError,
    quantize_tile,
    replay,
    shed_expired,
)
from repro.workloads.serving import Request, ServingTrace, make_trace

CFG = BertConfig(num_layers=2)


@pytest.fixture(scope="module")
def trace():
    return make_trace(60, 256, mean_interarrival_us=400.0, seed=0)


def covered_ids(plan):
    return sorted(r.request_id for d in plan for r in d.requests)


class TestFifo:
    def test_covers_all_requests(self, trace):
        plan = FifoBatcher(batch_size=8).plan(trace)
        assert covered_ids(plan) == list(range(trace.num_requests))

    def test_batch_sizes(self, trace):
        plan = FifoBatcher(batch_size=8).plan(trace)
        sizes = [len(d.requests) for d in plan]
        assert all(s == 8 for s in sizes[:-1])
        assert 0 < sizes[-1] <= 8

    def test_ready_is_last_arrival(self, trace):
        plan = FifoBatcher(batch_size=8).plan(trace)
        for d in plan:
            assert d.ready_us == max(r.arrival_us for r in d.requests)

    def test_invalid_size(self, trace):
        with pytest.raises(ValueError, match="batch_size"):
            FifoBatcher(batch_size=0).plan(trace)


class TestTimeout:
    def test_covers_all_requests(self, trace):
        plan = TimeoutBatcher(batch_size=8, timeout_us=1500).plan(trace)
        assert covered_ids(plan) == list(range(trace.num_requests))

    def test_no_request_waits_past_timeout_for_dispatch(self, trace):
        timeout = 1500.0
        plan = TimeoutBatcher(batch_size=64, timeout_us=timeout).plan(trace)
        for d in plan:
            head = min(r.arrival_us for r in d.requests)
            assert d.ready_us <= head + timeout + 1e-6

    def test_zero_timeout_dispatches_everything_quickly(self, trace):
        plan = TimeoutBatcher(batch_size=64, timeout_us=0.0).plan(trace)
        # with zero patience, batches rarely fill
        assert len(plan) >= trace.num_requests / 4

    def test_huge_timeout_behaves_like_fifo(self, trace):
        by_timeout = TimeoutBatcher(batch_size=8, timeout_us=1e12).plan(trace)
        by_fifo = FifoBatcher(batch_size=8).plan(trace)
        assert [len(d.requests) for d in by_timeout] == [
            len(d.requests) for d in by_fifo
        ]


class TestBucket:
    def test_covers_all_requests(self, trace):
        plan = BucketBatcher(batch_size=8, bucket_width=64).plan(trace)
        assert covered_ids(plan) == list(range(trace.num_requests))

    def test_batches_are_length_homogeneous(self, trace):
        width = 64
        plan = BucketBatcher(batch_size=8, bucket_width=width).plan(trace)
        for d in plan:
            buckets = {(r.seq_len - 1) // width for r in d.requests}
            assert len(buckets) == 1

    def test_tighter_buckets_less_padding(self, trace):
        def padding(plan):
            total = 0
            for d in plan:
                longest = max(r.seq_len for r in d.requests)
                total += sum(longest - r.seq_len for r in d.requests)
            return total

        loose = BucketBatcher(batch_size=8, bucket_width=256).plan(trace)
        tight = BucketBatcher(batch_size=8, bucket_width=32).plan(trace)
        assert padding(tight) <= padding(loose)

    @given(
        width=st.sampled_from([32, 64, 128]),
        batch=st.integers(1, 16),
        timeout=st.floats(0, 5000),
    )
    @settings(max_examples=20, deadline=None)
    def test_cover_property(self, width, batch, timeout):
        trace = make_trace(40, 256, seed=9)
        plan = BucketBatcher(
            batch_size=batch, bucket_width=width, timeout_us=timeout
        ).plan(trace)
        assert covered_ids(plan) == list(range(trace.num_requests))


class TestReplay:
    def test_latencies_positive_and_complete(self, trace):
        result = replay(trace, FifoBatcher(8), ByteTransformer(), CFG)
        assert result.latencies_us.shape == (trace.num_requests,)
        assert (result.latencies_us > 0).all()
        assert 0 < result.utilisation <= 1.0

    def test_packed_engine_faster_than_padded(self, trace):
        fifo = FifoBatcher(8)
        bt = replay(trace, fifo, ByteTransformer(), CFG)
        pt = replay(trace, fifo, PyTorchJIT(), CFG)
        assert bt.mean_ms < pt.mean_ms

    def test_bucketing_helps_padded_engines_most(self):
        """Length-homogeneous batches shrink padded work; a packed engine
        cares much less.  Compare each engine's bucket-vs-fifo gain on
        GPU busy time (queueing differences cancel out there).  Needs a
        dense trace so buckets actually fill."""
        dense = make_trace(200, 256, mean_interarrival_us=50.0, seed=0)
        fifo = FifoBatcher(8)
        bucket = BucketBatcher(
            batch_size=8, bucket_width=64, timeout_us=4000
        )
        pt_gain = (
            replay(dense, fifo, PyTorchJIT(), CFG).gpu_busy_us
            / replay(dense, bucket, PyTorchJIT(), CFG).gpu_busy_us
        )
        bt_gain = (
            replay(dense, fifo, ByteTransformer(), CFG).gpu_busy_us
            / replay(dense, bucket, ByteTransformer(), CFG).gpu_busy_us
        )
        assert pt_gain > bt_gain

    def test_dispatch_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            Dispatch(requests=(), ready_us=0.0)


class TestEdgeCases:
    """No batching policy may ever drop a request, however degenerate
    the trace or the policy parameters."""

    def test_zero_timeout_still_covers_everything(self, trace):
        for batcher in (
            TimeoutBatcher(batch_size=8, timeout_us=0.0),
            BucketBatcher(batch_size=8, bucket_width=64, timeout_us=0.0),
        ):
            plan = batcher.plan(trace)
            assert covered_ids(plan) == list(range(trace.num_requests))

    def test_batch_that_never_fills_is_flushed(self, trace):
        # batch_size far above the trace size: no batch ever fills, so
        # only the timeout (and end-of-trace) flushes can dispatch
        for batcher in (
            TimeoutBatcher(batch_size=10_000, timeout_us=2000.0),
            BucketBatcher(
                batch_size=10_000, bucket_width=64, timeout_us=2000.0
            ),
        ):
            plan = batcher.plan(trace)
            assert covered_ids(plan) == list(range(trace.num_requests))

    def test_single_request_trace(self):
        solo = make_trace(1, 64, seed=0)
        for batcher in (
            FifoBatcher(batch_size=8),
            TimeoutBatcher(batch_size=8, timeout_us=1500.0),
            BucketBatcher(batch_size=8, bucket_width=64),
        ):
            plan = batcher.plan(solo)
            assert len(plan) == 1
            assert len(plan[0].requests) == 1
            assert plan[0].ready_us >= solo.requests[0].arrival_us


class TestShedExpired:
    def test_splits_on_absolute_deadline(self):
        requests = [
            Request(0, 0.0, 8, deadline_us=100.0),  # expires at 100
            Request(1, 50.0, 8, deadline_us=100.0),  # expires at 150
            Request(2, 60.0, 8),  # deadline-free
        ]
        alive, expired = shed_expired(requests, now_us=120.0)
        assert [r.request_id for r in expired] == [0]
        assert [r.request_id for r in alive] == [1, 2]

    def test_boundary_is_expired(self):
        # at exactly the deadline the request can no longer finish in
        # time (service takes strictly positive time)
        requests = [Request(0, 0.0, 8, deadline_us=100.0)]
        alive, expired = shed_expired(requests, now_us=100.0)
        assert not alive and len(expired) == 1

    def test_deadline_free_requests_never_expire(self):
        requests = [Request(0, 0.0, 8)]
        alive, expired = shed_expired(requests, now_us=1e12)
        assert len(alive) == 1 and not expired


class TestContinuous:
    def test_covers_all_requests(self, trace):
        plan = ContinuousBatcher(token_budget=1024).plan(trace)
        assert covered_ids(plan) == list(range(trace.num_requests))

    def test_dispatches_respect_token_budget(self, trace):
        budget = 1024
        plan = ContinuousBatcher(token_budget=budget).plan(trace)
        for d in plan:
            assert d.total_tokens <= budget

    def test_tiles_are_quantized(self, trace):
        batcher = ContinuousBatcher(token_budget=2048)
        tiles = batcher.effective_tiles()
        plan = batcher.plan(trace)
        for d in plan:
            assert d.tile == quantize_tile(d.total_tokens, tiles)
            assert d.tile >= d.total_tokens

    def test_effective_tiles_capped_by_budget(self):
        batcher = ContinuousBatcher(token_budget=1024)
        assert batcher.effective_tiles() == (512, 1024)
        odd = ContinuousBatcher(token_budget=700)
        assert odd.effective_tiles() == (512, 700)

    def test_segment_offsets_match_lengths(self, trace):
        plan = ContinuousBatcher(token_budget=1024).plan(trace)
        for d in plan:
            offsets = d.segment_offsets
            assert offsets[0] == 0
            assert offsets[-1] == d.total_tokens
            np.testing.assert_array_equal(np.diff(offsets), d.seq_lens)

    def test_oversize_request_typed_error(self):
        trace = ServingTrace(
            requests=(Request(request_id=0, arrival_us=0.0, seq_len=300),),
            max_seq_len=512,
        )
        with pytest.raises(TokenBudgetExceededError, match="request 0"):
            ContinuousBatcher(token_budget=256).plan(trace)

    def test_deadline_aware_fill(self):
        # Three simultaneous arrivals; the head plus exactly one more fit
        # the budget. The fill must pick the tightest deadline, not
        # arrival order.
        requests = (
            Request(request_id=0, arrival_us=0.0, seq_len=100),
            Request(request_id=1, arrival_us=0.0, seq_len=100),
            Request(request_id=2, arrival_us=0.0, seq_len=100, deadline_us=500.0),
        )
        trace = ServingTrace(requests=requests, max_seq_len=128)
        plan = ContinuousBatcher(token_budget=250, tiles=(64,)).plan(trace)
        first = sorted(r.request_id for r in plan[0].requests)
        assert first == [0, 2]

    def test_head_always_dispatched(self):
        # A head with no deadline must still ride in the first cut even
        # when every other waiting request has a tighter deadline.
        requests = tuple(
            Request(
                request_id=i,
                arrival_us=0.0,
                seq_len=100,
                deadline_us=None if i == 0 else 400.0,
            )
            for i in range(4)
        )
        trace = ServingTrace(requests=requests, max_seq_len=128)
        plan = ContinuousBatcher(token_budget=200, tiles=(64,)).plan(trace)
        assert 0 in {r.request_id for r in plan[0].requests}

    def test_all_same_length_exact_tile(self):
        # 8 x 64 = 512 tokens: lands exactly on the smallest tile, no
        # quantization padding at all.
        requests = tuple(
            Request(request_id=i, arrival_us=float(i), seq_len=64)
            for i in range(8)
        )
        trace = ServingTrace(requests=requests, max_seq_len=64)
        plan = ContinuousBatcher(token_budget=512).plan(trace)
        assert len(plan) == 1
        assert plan[0].tile == 512
        assert plan[0].total_tokens == 512

    def test_quantize_tile_bounds(self):
        assert quantize_tile(1, DEFAULT_TILES) == 512
        assert quantize_tile(512, DEFAULT_TILES) == 512
        assert quantize_tile(513, DEFAULT_TILES) == 1024
        with pytest.raises(TokenBudgetExceededError):
            quantize_tile(2049, DEFAULT_TILES)
        with pytest.raises(ValueError, match="positive"):
            quantize_tile(0, DEFAULT_TILES)

    def test_dispatch_tile_validation(self):
        requests = (Request(request_id=0, arrival_us=0.0, seq_len=100),)
        with pytest.raises(ValueError, match="tile"):
            Dispatch(requests=requests, ready_us=0.0, tile=64)

    @settings(max_examples=25, deadline=None)
    @given(
        budget=st.integers(64, 512),
        timeout=st.floats(0.0, 5000.0),
        seed=st.integers(0, 10),
    )
    def test_cover_property(self, budget, timeout, seed):
        trace = make_trace(30, 64, mean_interarrival_us=300.0, seed=seed)
        plan = ContinuousBatcher(
            token_budget=budget, timeout_us=timeout
        ).plan(trace)
        assert covered_ids(plan) == list(range(trace.num_requests))
        assert all(d.total_tokens <= budget for d in plan)


class TestContinuousHeadStarvation:
    """Regression: a tight-deadline head must not starve behind the
    plain head timeout while deadline-sorted later arrivals fill cuts."""

    @staticmethod
    def stream(head_deadline_us):
        rows = [
            Request(
                request_id=0,
                arrival_us=0.0,
                seq_len=32,
                deadline_us=head_deadline_us,
            )
        ]
        rows += [
            Request(
                request_id=i,
                arrival_us=100.0 * i,
                seq_len=32,
                deadline_us=50_000.0,
            )
            for i in range(1, 20)
        ]
        return ServingTrace(requests=tuple(rows), max_seq_len=64)

    def test_tight_deadline_head_ships_within_its_slack(self):
        batcher = ContinuousBatcher(
            token_budget=4096, timeout_us=2_000.0, deadline_slack=0.5
        )
        plan = batcher.plan(self.stream(head_deadline_us=1_000.0))
        head_dispatch = next(
            d
            for d in plan
            if any(r.request_id == 0 for r in d.requests)
        )
        # cut after half the deadline budget, not the 2 ms timeout —
        # the remaining half is left to actually run in
        assert head_dispatch.ready_us == pytest.approx(500.0)
        assert covered_ids(plan) == list(range(20))

    def test_deadline_free_head_keeps_the_plain_timeout(self):
        batcher = ContinuousBatcher(token_budget=4096, timeout_us=2_000.0)
        rows = self.stream(head_deadline_us=None)
        plan = batcher.plan(rows)
        head_dispatch = next(
            d
            for d in plan
            if any(r.request_id == 0 for r in d.requests)
        )
        assert head_dispatch.ready_us == pytest.approx(2_000.0)

    def test_cut_only_packs_arrived_requests(self):
        # a deadline-forced early cut must not include requests that
        # arrive after the cut instant
        batcher = ContinuousBatcher(token_budget=4096, timeout_us=2_000.0)
        plan = batcher.plan(self.stream(head_deadline_us=1_000.0))
        for d in plan:
            assert all(r.arrival_us <= d.ready_us for r in d.requests)

    def test_deadline_slack_validated(self):
        trace = self.stream(head_deadline_us=1_000.0)
        with pytest.raises(ValueError, match="deadline_slack"):
            ContinuousBatcher(deadline_slack=0.0).plan(trace)
        with pytest.raises(ValueError, match="deadline_slack"):
            ContinuousBatcher(deadline_slack=1.5).plan(trace)
