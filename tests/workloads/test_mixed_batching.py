"""Mixed prefill/decode round planning: budget, priority, ordering."""

import pytest

from repro.workloads.batching import (
    DecodeRound,
    MixedContinuousBatcher,
    TokenBudgetExceededError,
)
from repro.workloads.serving import GenerationRequest, Request


def req(rid, seq_len, arrival=0.0, deadline=None):
    return Request(
        request_id=rid,
        arrival_us=arrival,
        seq_len=seq_len,
        deadline_us=deadline,
    )


class TestDecodeRound:
    def test_empty_round_rejected(self):
        with pytest.raises(ValueError, match="prefill or decode"):
            DecodeRound(decode_ids=(), prefills=(), ready_us=0.0)

    def test_tile_must_hold_prompt_tokens(self):
        with pytest.raises(ValueError, match="cannot hold"):
            DecodeRound(
                decode_ids=(),
                prefills=(req(0, 100),),
                ready_us=0.0,
                prefill_tile=64,
            )

    def test_token_accounting(self):
        round_ = DecodeRound(
            decode_ids=(4, 5, 6),
            prefills=(req(0, 40), req(1, 24)),
            ready_us=1.0,
            prefill_tile=64,
        )
        assert round_.prefill_tokens == 64
        assert round_.decode_batch == 3
        assert round_.total_tokens == 67


class TestBatcherValidation:
    def test_budget_positive(self):
        with pytest.raises(ValueError, match="positive"):
            MixedContinuousBatcher(token_budget=0)

    @pytest.mark.parametrize("priority", (0.0, -0.1, 1.5))
    def test_priority_range(self, priority):
        with pytest.raises(ValueError, match="decode_priority"):
            MixedContinuousBatcher(decode_priority=priority)

    def test_effective_tiles_end_at_budget(self):
        b = MixedContinuousBatcher(token_budget=512, tiles=(128, 256, 4096))
        assert b.effective_tiles() == (128, 256, 512)


class TestPlanRound:
    def test_decode_only_gets_full_budget(self):
        b = MixedContinuousBatcher(token_budget=8, decode_priority=0.5)
        round_ = b.plan_round([], list(range(20)), now_us=0.0)
        assert round_.decode_ids == tuple(range(8))
        assert round_.prefills == ()
        assert round_.prefill_tile == 0

    def test_waiting_prefills_cap_decode(self):
        b = MixedContinuousBatcher(token_budget=100, decode_priority=0.6)
        round_ = b.plan_round(
            [req(50, 30)], list(range(90)), now_us=0.0
        )
        # decode capped at 60% of the budget; residual admits the prompt
        assert round_.decode_ids == tuple(range(60))
        assert [r.request_id for r in round_.prefills] == [50]

    def test_future_arrivals_are_invisible(self):
        b = MixedContinuousBatcher(token_budget=100, decode_priority=0.5)
        round_ = b.plan_round(
            [req(0, 10, arrival=500.0)], [1, 2], now_us=0.0
        )
        # the unarrived prompt neither caps decode nor joins the round
        assert round_.decode_ids == (1, 2)
        assert round_.prefills == ()

    def test_tightest_deadline_first(self):
        b = MixedContinuousBatcher(token_budget=64)
        waiting = [
            req(0, 30, arrival=0.0),  # deadline-free: last resort
            req(1, 30, arrival=2.0, deadline=50.0),
            req(2, 30, arrival=1.0, deadline=500.0),
        ]
        round_ = b.plan_round(waiting, [], now_us=5.0)
        # only two 30-token prompts fit 64; the urgent pair wins
        assert [r.request_id for r in round_.prefills] == [1, 2]

    def test_prefill_tile_quantizes_used_tokens(self):
        b = MixedContinuousBatcher(token_budget=2048)
        round_ = b.plan_round([req(0, 100)], [], now_us=0.0)
        assert round_.prefill_tile >= 100
        assert round_.prefill_tile in b.effective_tiles()

    def test_nothing_to_do_returns_none(self):
        b = MixedContinuousBatcher()
        assert b.plan_round([], [], now_us=0.0) is None
        assert (
            b.plan_round([req(0, 10, arrival=99.0)], [], now_us=0.0) is None
        )

    def test_oversize_prompt_raises(self):
        b = MixedContinuousBatcher(token_budget=64)
        with pytest.raises(TokenBudgetExceededError, match="cannot be split"):
            b.plan_round([req(0, 65)], [], now_us=0.0)

    def test_generation_requests_plan_like_requests(self):
        b = MixedContinuousBatcher(token_budget=64)
        g = GenerationRequest(
            request_id=3, arrival_us=0.0, seq_len=20, decode_tokens=9
        )
        round_ = b.plan_round([g], [7], now_us=0.0)
        assert round_.decode_ids == (7,)
        assert round_.prefills == (g,)
