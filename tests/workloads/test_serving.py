"""Serving-trace emulator."""

import numpy as np
import pytest

from repro.workloads.generator import LengthDistribution
from repro.workloads.serving import Request, ServingTrace, make_trace


class TestTrace:
    def test_arrivals_sorted(self):
        trace = make_trace(50, 256, seed=0)
        arrivals = [r.arrival_us for r in trace.requests]
        assert arrivals == sorted(arrivals)

    def test_lengths_in_range(self):
        trace = make_trace(100, 128, seed=1)
        for r in trace.requests:
            assert 1 <= r.seq_len <= 128

    def test_deterministic(self):
        a = make_trace(20, 64, seed=5)
        b = make_trace(20, 64, seed=5)
        assert a == b

    def test_interarrival_scale(self):
        trace = make_trace(4000, 64, mean_interarrival_us=100.0, seed=2)
        gaps = np.diff([0.0] + [r.arrival_us for r in trace.requests])
        assert abs(gaps.mean() - 100.0) < 10.0

    def test_zipf_distribution_selectable(self):
        trace = make_trace(
            50, 256, distribution=LengthDistribution.ZIPF, seed=0
        )
        assert trace.num_requests == 50

    def test_fixed_distribution_rejected(self):
        with pytest.raises(ValueError, match="distribution"):
            make_trace(
                5, 64, distribution=LengthDistribution.FIXED, seed=0
            )

    def test_zero_requests_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            make_trace(0, 64)


class TestBatching:
    def test_batches_cover_all_requests(self):
        trace = make_trace(23, 64, seed=3)
        groups = trace.batches(8)
        assert sum(len(g) for g in groups) == 23
        assert len(groups) == 3  # 8 + 8 + 7

    def test_batch_size_validated(self):
        trace = make_trace(4, 64, seed=0)
        with pytest.raises(ValueError, match="batch_size"):
            trace.batches(0)

    def test_unsorted_trace_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            ServingTrace(
                requests=(
                    Request(0, 100.0, 5),
                    Request(1, 50.0, 5),
                ),
                max_seq_len=64,
            )

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ServingTrace(requests=(), max_seq_len=64)


class TestValidation:
    def test_zero_length_request_rejected(self):
        with pytest.raises(ValueError, match="lengths must be >= 1"):
            ServingTrace(
                requests=(Request(0, 0.0, 0),), max_seq_len=64
            )

    def test_negative_length_request_rejected(self):
        with pytest.raises(ValueError, match="lengths must be >= 1"):
            ServingTrace(
                requests=(Request(0, 0.0, -3),), max_seq_len=64
            )

    def test_overlong_request_rejected(self):
        with pytest.raises(ValueError, match="max_seq_len"):
            ServingTrace(
                requests=(Request(0, 0.0, 65),), max_seq_len=64
            )

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_us"):
            ServingTrace(
                requests=(Request(0, 0.0, 8, deadline_us=0.0),),
                max_seq_len=64,
            )


class TestDeadlines:
    def test_requests_are_deadline_free_by_default(self):
        trace = make_trace(5, 64, seed=0)
        assert all(r.deadline_us is None for r in trace.requests)
        assert all(r.absolute_deadline_us is None for r in trace.requests)

    def test_make_trace_attaches_budget_to_every_request(self):
        trace = make_trace(5, 64, seed=0, deadline_us=750.0)
        for r in trace.requests:
            assert r.deadline_us == 750.0
            assert r.absolute_deadline_us == r.arrival_us + 750.0
