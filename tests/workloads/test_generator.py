"""Variable-length workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generator import (
    LengthDistribution,
    fixed_lengths,
    make_batch,
    normal_lengths,
    paper_lengths,
    uniform_lengths,
    zipf_lengths,
)


class TestLengthDistributions:
    def test_uniform_mean_near_alpha(self):
        rng = np.random.default_rng(0)
        lens = uniform_lengths(2000, 512, 0.6, rng)
        assert abs(lens.mean() / 512 - 0.6) < 0.02

    def test_uniform_bounds(self):
        rng = np.random.default_rng(1)
        lens = uniform_lengths(500, 256, 0.6, rng)
        assert lens.min() >= 1
        assert lens.max() <= 256

    def test_alpha_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="alpha"):
            uniform_lengths(4, 128, 0.0, rng)
        with pytest.raises(ValueError, match="alpha"):
            uniform_lengths(4, 128, 1.5, rng)

    def test_alpha_one_is_all_max(self):
        rng = np.random.default_rng(0)
        lens = uniform_lengths(100, 128, 1.0, rng)
        assert (lens == 128).all()

    def test_paper_lengths_is_alpha_06(self):
        lens = paper_lengths(2000, 512, np.random.default_rng(0))
        assert abs(lens.mean() / 512 - 0.6) < 0.02

    def test_normal_clipped(self):
        rng = np.random.default_rng(2)
        lens = normal_lengths(1000, 128, 0.6, rng)
        assert lens.min() >= 1
        assert lens.max() <= 128

    def test_zipf_heavy_tail(self):
        rng = np.random.default_rng(3)
        lens = zipf_lengths(2000, 1024, rng)
        # most sentences short, some long
        assert np.median(lens) < lens.mean() * 1.2
        assert lens.max() > 4 * np.median(lens)

    def test_fixed(self):
        assert (fixed_lengths(7, 99) == 99).all()

    @given(
        alpha=st.floats(0.55, 1.0),
        max_len=st.sampled_from([64, 128, 512]),
    )
    @settings(max_examples=20, deadline=None)
    def test_uniform_mean_property(self, alpha, max_len):
        rng = np.random.default_rng(17)
        lens = uniform_lengths(3000, max_len, alpha, rng)
        assert abs(lens.mean() / max_len - alpha) < 0.05


class TestMakeBatch:
    def test_shapes(self):
        batch = make_batch(4, 32, 64, seed=0)
        assert batch.x.shape == (4, 32, 64)
        assert batch.mask.shape == (4, 32)
        assert batch.seq_lens.shape == (4,)
        assert batch.batch == 4
        assert batch.hidden == 64

    def test_mask_left_aligned(self):
        batch = make_batch(6, 24, 8, seed=1)
        for b in range(6):
            length = batch.seq_lens[b]
            assert batch.mask[b, :length].all()
            assert not batch.mask[b, length:].any()

    def test_padding_rows_zeroed(self):
        batch = make_batch(6, 24, 8, seed=2)
        pad = batch.mask == 0
        assert (batch.x[pad] == 0).all()

    def test_deterministic(self):
        a = make_batch(3, 16, 8, seed=9)
        b = make_batch(3, 16, 8, seed=9)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.seq_lens, b.seq_lens)

    def test_seed_matters(self):
        a = make_batch(3, 16, 8, seed=9)
        b = make_batch(3, 16, 8, seed=10)
        assert not np.array_equal(a.x, b.x)

    def test_packing_consistent(self):
        batch = make_batch(5, 20, 8, seed=3)
        packing = batch.packing()
        assert packing.total_tokens == batch.seq_lens.sum()
        np.testing.assert_array_equal(packing.to_mask(), batch.mask)

    def test_distributions_selectable(self):
        for dist in LengthDistribution:
            batch = make_batch(4, 16, 8, distribution=dist, seed=0)
            assert batch.seq_lens.max() <= 16

    def test_alpha_property(self):
        batch = make_batch(500, 128, 4, alpha=0.7, seed=4)
        assert abs(batch.alpha - 0.7) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            make_batch(0, 16, 8)

    def test_float32_activations(self):
        assert make_batch(2, 8, 4, seed=0).x.dtype == np.float32
