"""Open-loop traffic generation: determinism, rates, crowds, mixtures."""

import numpy as np
import pytest

from repro.workloads.generator import LengthDistribution
from repro.workloads.traffic import (
    DiurnalArrivals,
    FlashCrowd,
    LengthComponent,
    LengthProfile,
    MmppArrivals,
    PoissonArrivals,
    TenantTraffic,
    generate_traffic,
)


def two_tenants(crowd=()):
    return [
        TenantTraffic(
            "chat",
            PoissonArrivals(2_000.0),
            LengthProfile.zipf_mixed(128),
            deadline_us=20_000.0,
            flash_crowds=crowd,
        ),
        TenantTraffic(
            "bulk",
            MmppArrivals(1_000.0),
            LengthProfile.single(256, LengthDistribution.UNIFORM, alpha=0.7),
        ),
    ]


class TestArrivalProcesses:
    def test_poisson_rate_converges(self):
        proc = PoissonArrivals(5_000.0)  # 5e-3 per us
        times = proc.sample(2_000_000.0, np.random.default_rng(0))
        assert times.size == pytest.approx(10_000, rel=0.05)
        assert np.all(np.diff(times) >= 0)
        assert times.min() > 0 and times.max() <= 2_000_000.0

    def test_mmpp_mean_rate_matches_formula(self):
        proc = MmppArrivals(
            2_000.0, burst_factor=4.0, mean_quiet_us=50_000, mean_burst_us=10_000
        )
        times = proc.sample(20_000_000.0, np.random.default_rng(1))
        empirical = times.size / 20_000_000.0
        assert empirical == pytest.approx(proc.mean_rate_per_us, rel=0.1)

    def test_mmpp_is_burstier_than_poisson(self):
        horizon = 5_000_000.0
        bins = np.arange(0.0, horizon + 1, 10_000.0)
        mmpp = np.histogram(
            MmppArrivals(2_000.0, burst_factor=6.0).sample(
                horizon, np.random.default_rng(2)
            ),
            bins,
        )[0]
        poisson = np.histogram(
            PoissonArrivals(2_000.0).sample(horizon, np.random.default_rng(2)),
            bins,
        )[0]
        # index of dispersion (var/mean): 1 for Poisson, >1 for MMPP
        assert mmpp.var() / mmpp.mean() > 2.0
        assert poisson.var() / poisson.mean() < 1.5

    def test_diurnal_rate_swings_with_phase(self):
        proc = DiurnalArrivals(
            2_000.0, period_us=1_000_000.0, depth=0.8, phase=0.0
        )
        times = proc.sample(1_000_000.0, np.random.default_rng(3))
        # first half-period is the "day" (sin > 0), second the "night"
        day = (times < 500_000.0).sum()
        night = times.size - day
        assert day > 1.5 * night
        assert proc.rate_at(250_000.0) > proc.rate_at(750_000.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError, match="burst_factor"):
            MmppArrivals(1_000.0, burst_factor=0.5)
        with pytest.raises(ValueError, match="depth"):
            DiurnalArrivals(1_000.0, depth=1.0)
        with pytest.raises(ValueError, match="horizon_us"):
            PoissonArrivals(1_000.0).sample(0.0, np.random.default_rng(0))


class TestFlashCrowd:
    def test_multiplies_rate_inside_window_only(self):
        crowd = FlashCrowd(start_us=100_000.0, duration_us=50_000.0, multiplier=3.0)
        extra = crowd.extra_arrivals(
            0.002, 1_000_000.0, np.random.default_rng(0)
        )
        assert np.all(extra >= 100_000.0) and np.all(extra <= 150_000.0)
        # extra stream runs at (multiplier - 1) * steady inside the window
        assert extra.size == pytest.approx(0.002 * 2.0 * 50_000.0, rel=0.2)

    def test_truncated_by_horizon(self):
        crowd = FlashCrowd(start_us=90.0, duration_us=100.0, multiplier=5.0)
        extra = crowd.extra_arrivals(0.5, 100.0, np.random.default_rng(0))
        assert np.all(extra <= 100.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="multiplier"):
            FlashCrowd(0.0, 10.0, multiplier=1.0)
        with pytest.raises(ValueError, match="duration"):
            FlashCrowd(0.0, 0.0)


class TestLengthProfile:
    def test_zipf_mixed_is_heavy_tailed_with_long_tail(self):
        profile = LengthProfile.zipf_mixed(512, long_tail_weight=0.3)
        lens = profile.sample(20_000, np.random.default_rng(0))
        assert lens.min() >= 1 and lens.max() <= 512
        # bimodal production shape: plenty of short zipf-body requests
        # AND a sizeable long-prompt population
        assert (lens <= 64).mean() > 0.25
        assert (lens > 256).mean() > 0.25

    def test_mixture_weights_respected(self):
        profile = LengthProfile(
            max_seq_len=100,
            components=(
                LengthComponent(3.0, LengthDistribution.FIXED),
                LengthComponent(1.0, LengthDistribution.ZIPF),
            ),
        )
        lens = profile.sample(8_000, np.random.default_rng(1))
        assert (lens == 100).mean() == pytest.approx(0.75, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError, match="component"):
            LengthProfile(max_seq_len=10, components=())
        with pytest.raises(ValueError, match="long_tail_weight"):
            LengthProfile.zipf_mixed(64, long_tail_weight=1.0)
        with pytest.raises(ValueError, match="weight"):
            LengthComponent(0.0, LengthDistribution.ZIPF)


class TestGenerateTraffic:
    def test_trace_is_deterministic_in_the_seed(self):
        a = generate_traffic(two_tenants(), 500_000.0, seed=7)
        b = generate_traffic(two_tenants(), 500_000.0, seed=7)
        c = generate_traffic(two_tenants(), 500_000.0, seed=8)
        assert a.requests == b.requests
        assert a.requests != c.requests

    def test_requests_tagged_sorted_and_ids_sequential(self):
        trace = generate_traffic(two_tenants(), 300_000.0, seed=0)
        arrivals = [r.arrival_us for r in trace.requests]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in trace.requests] == list(
            range(len(trace.requests))
        )
        tenants = {r.tenant for r in trace.requests}
        assert tenants == {"chat", "bulk"}
        assert trace.max_seq_len == 256
        for r in trace.requests:
            if r.tenant == "chat":
                assert r.deadline_us == 20_000.0
            else:
                assert r.deadline_us is None

    def test_flash_crowd_is_isolated_to_its_substream(self):
        crowd = FlashCrowd(100_000.0, 50_000.0, multiplier=4.0)
        calm = generate_traffic(two_tenants(), 400_000.0, seed=3)
        spiky = generate_traffic(two_tenants((crowd,)), 400_000.0, seed=3)
        # the other tenant's requests are untouched by the crowd
        calm_bulk = [
            (r.arrival_us, r.seq_len)
            for r in calm.requests
            if r.tenant == "bulk"
        ]
        spiky_bulk = [
            (r.arrival_us, r.seq_len)
            for r in spiky.requests
            if r.tenant == "bulk"
        ]
        assert calm_bulk == spiky_bulk
        # and the crowd tenant gained arrivals inside the window only
        def window_count(trace):
            return sum(
                1
                for r in trace.requests
                if r.tenant == "chat" and 100_000.0 <= r.arrival_us < 150_000.0
            )

        def outside_count(trace):
            return sum(
                1
                for r in trace.requests
                if r.tenant == "chat"
                and not 100_000.0 <= r.arrival_us < 150_000.0
            )

        assert window_count(spiky) > 2.5 * window_count(calm)
        assert outside_count(spiky) == outside_count(calm)

    def test_crowd_multiplies_window_rate(self):
        crowd = FlashCrowd(0.0, 1_000_000.0, multiplier=3.0)
        tenant = TenantTraffic(
            "t",
            PoissonArrivals(2_000.0),
            LengthProfile.single(64),
            flash_crowds=(crowd,),
        )
        trace = generate_traffic([tenant], 1_000_000.0, seed=0)
        assert len(trace.requests) == pytest.approx(6_000, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            generate_traffic([], 1000.0)
        with pytest.raises(ValueError, match="duplicate"):
            generate_traffic(
                [
                    TenantTraffic("x", PoissonArrivals(1.0), LengthProfile.single(8)),
                    TenantTraffic("x", PoissonArrivals(1.0), LengthProfile.single(8)),
                ],
                1000.0,
            )
        with pytest.raises(ValueError, match="no arrivals"):
            generate_traffic(
                [
                    TenantTraffic(
                        "x", PoissonArrivals(0.001), LengthProfile.single(8)
                    )
                ],
                10.0,
            )
