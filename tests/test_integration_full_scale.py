"""Full-scale integration: BERT-base numerics, end to end.

The unit suite runs on a reduced architecture for speed; this test runs
the *actual* paper configuration (12 heads, head size 64, 12 layers,
hidden 768) numerically through both the padded baseline and the fully
optimised pipeline, validating against the oracle and checking the
modelled end-to-end speedup lands in Figure 13/14 territory.
"""

import numpy as np
import pytest

from repro.core.config import BASELINE, FUSED_MHA, BertConfig
from repro.core.model import BertEncoderModel
from repro.core.reference import reference_encoder
from repro.core.weights import init_model_weights
from repro.gpusim import ExecutionContext
from repro.workloads.generator import make_batch

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def full_scale():
    config = BertConfig()  # the paper's standard: 12x12x64
    weights = init_model_weights(config, seed=0)
    batch = make_batch(
        4, 128, config.hidden_size, alpha=0.6, seed=1
    )
    oracle = reference_encoder(batch.x, weights, config, batch.mask)
    return config, weights, batch, oracle


class TestFullScale:
    def test_optimised_pipeline_matches_oracle(self, full_scale):
        config, weights, batch, oracle = full_scale
        model = BertEncoderModel(config, FUSED_MHA, weights=weights)
        out = model.forward(batch.x, batch.mask)
        valid = batch.mask.astype(bool)
        np.testing.assert_allclose(
            out[valid], oracle[valid], rtol=5e-3, atol=5e-4
        )

    def test_baseline_pipeline_matches_oracle(self, full_scale):
        config, weights, batch, oracle = full_scale
        model = BertEncoderModel(config, BASELINE, weights=weights)
        out = model.forward(batch.x, batch.mask)
        valid = batch.mask.astype(bool)
        np.testing.assert_allclose(
            out[valid], oracle[valid], rtol=5e-3, atol=5e-4
        )

    def test_modelled_speedup_in_paper_band(self, full_scale):
        config, weights, batch, _ = full_scale
        times = {}
        for opt in (BASELINE, FUSED_MHA):
            model = BertEncoderModel(config, opt, weights=weights)
            ctx = ExecutionContext()
            model.forward(batch.x, batch.mask, ctx=ctx)
            times[opt.label] = ctx.elapsed_us()
        gain = times["baseline"] / times["fused MHA"] - 1.0
        # Figure 13's single-layer +60% holds end-to-end too; allow a wide
        # band at this small batch/seqlen corner
        assert 0.15 <= gain <= 1.5

    def test_kernel_count_ratio(self, full_scale):
        """Fusion must cut the launch count by roughly half."""
        config, weights, batch, _ = full_scale
        counts = {}
        for opt in (BASELINE, FUSED_MHA):
            model = BertEncoderModel(config, opt, weights=weights)
            result = model.forward_with_stats(batch.x, batch.mask)
            counts[opt.label] = result.kernel_count
        assert counts["fused MHA"] < 0.7 * counts["baseline"]
