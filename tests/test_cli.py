"""CLI entry points (run in-process via repro.cli.main)."""

import json

import pytest

from repro.cli import main


class TestDevices:
    def test_lists_presets(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out and "V100" in out and "A10" in out


class TestExperiments:
    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out and "table2" in out

    def test_empty_names_lists(self, capsys):
        assert main(["experiments"]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_rejected(self, capsys):
        assert main(["experiments", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_table2(self, capsys):
        assert main(["experiments", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out


class TestProfile:
    def test_profiles_and_traces(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        rc = main(
            [
                "profile",
                "--batch",
                "4",
                "--max-seq-len",
                "128",
                "--layers",
                "2",
                "--trace",
                str(trace),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernels" in out and "breakdown" in out
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("ph") == "X" for e in events)

    def test_preset_selectable(self, capsys):
        rc = main(
            [
                "profile",
                "--preset",
                "baseline",
                "--batch",
                "2",
                "--max-seq-len",
                "64",
                "--layers",
                "1",
            ]
        )
        assert rc == 0
        assert "'baseline'" in capsys.readouterr().out

    def test_device_selectable(self, capsys):
        rc = main(
            [
                "profile",
                "--device",
                "V100-SXM2-32GB",
                "--batch",
                "2",
                "--max-seq-len",
                "64",
                "--layers",
                "1",
            ]
        )
        assert rc == 0
        assert "V100" in capsys.readouterr().out


class TestCompare:
    def test_compare_table(self, capsys):
        rc = main(
            [
                "compare",
                "--batch",
                "4",
                "--max-seq-len",
                "128",
                "--layers",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ByteTransformer" in out
        assert "(1.00x)" in out  # someone is fastest

    def test_unsupported_shape_marked(self, capsys):
        rc = main(
            [
                "compare",
                "--batch",
                "2",
                "--max-seq-len",
                "1024",
                "--layers",
                "1",
            ]
        )
        assert rc == 0
        assert "unsupported shape" in capsys.readouterr().out

    def test_bad_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestSelftest:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest passed" in out
        assert "fused MHA" in out


class TestSummary:
    def test_summary_fast(self, capsys):
        assert main(["experiments", "--summary", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out
        assert "Fig 14" in out

    def test_summary_markdown(self, capsys):
        assert main(["experiments", "--summary", "--fast", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| claim | paper | ours |")
