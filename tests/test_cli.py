"""CLI entry points (run in-process via repro.cli.main)."""

import json

import pytest

from repro.cli import main


class TestDevices:
    def test_lists_presets(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out and "V100" in out and "A10" in out


class TestExperiments:
    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out and "table2" in out

    def test_empty_names_lists(self, capsys):
        assert main(["experiments"]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_rejected(self, capsys):
        assert main(["experiments", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_table2(self, capsys):
        assert main(["experiments", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out


class TestProfile:
    def test_profiles_and_traces(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        rc = main(
            [
                "profile",
                "--batch",
                "4",
                "--max-seq-len",
                "128",
                "--layers",
                "2",
                "--trace",
                str(trace),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernels" in out and "breakdown" in out
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("ph") == "X" for e in events)

    def test_preset_selectable(self, capsys):
        rc = main(
            [
                "profile",
                "--preset",
                "baseline",
                "--batch",
                "2",
                "--max-seq-len",
                "64",
                "--layers",
                "1",
            ]
        )
        assert rc == 0
        assert "'baseline'" in capsys.readouterr().out

    def test_device_selectable(self, capsys):
        rc = main(
            [
                "profile",
                "--device",
                "V100-SXM2-32GB",
                "--batch",
                "2",
                "--max-seq-len",
                "64",
                "--layers",
                "1",
            ]
        )
        assert rc == 0
        assert "V100" in capsys.readouterr().out


class TestCompare:
    def test_compare_table(self, capsys):
        rc = main(
            [
                "compare",
                "--batch",
                "4",
                "--max-seq-len",
                "128",
                "--layers",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ByteTransformer" in out
        assert "(1.00x)" in out  # someone is fastest

    def test_unsupported_shape_marked(self, capsys):
        rc = main(
            [
                "compare",
                "--batch",
                "2",
                "--max-seq-len",
                "1024",
                "--layers",
                "1",
            ]
        )
        assert rc == 0
        assert "unsupported shape" in capsys.readouterr().out

    def test_bad_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestSelftest:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest passed" in out
        assert "fused MHA" in out


class TestServeChaos:
    def _args(self, *extra):
        return [
            "serve-chaos",
            "--requests", "30",
            "--max-seq-len", "128",
            "--layers", "2",
            *extra,
        ]

    def test_clean_replay(self, capsys):
        assert main(self._args("--fault-rate", "0", "--slow-rate", "0")) == 0
        out = capsys.readouterr().out
        assert "serving report: 30 requests" in out
        assert "injected faults: none" in out

    def test_sharded_replay_prints_per_device_accounting(self, capsys):
        rc = main(
            self._args(
                "--devices", "4", "--shard", "dp",
                "--batcher", "continuous",
            )
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 devices (dp)" in out
        assert "imbalance" in out and "steals" in out

    def test_indivisible_shard_group_rejected(self, capsys):
        # 'both' uses tp groups of 2, which cannot tile 3 devices
        assert main(self._args("--devices", "3", "--shard", "both")) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_chaos_replay_reports_faults_and_transitions(self, capsys):
        rc = main(
            self._args(
                "--fault-rate", "0.1",
                "--slow-rate", "0.05",
                "--requests", "80",
                "--trip-threshold", "2",
            )
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "injected faults:" in out
        assert "none" not in out.split("injected faults:")[1].splitlines()[0]

    def test_deadlines_and_admission(self, capsys):
        rc = main(
            self._args(
                "--mean-interarrival-us", "15",
                "--deadline-us", "1200",
                "--high-water-us", "1200",
            )
        )
        assert rc == 0
        assert "shed=" in capsys.readouterr().out

    def test_slo_summary_always_printed(self, capsys):
        assert main(self._args("--fault-rate", "0", "--slow-rate", "0")) == 0
        out = capsys.readouterr().out
        assert "== SLO ==" in out
        assert "availability:" in out
        assert "error budget:" in out

    def test_telemetry_exports(self, capsys, tmp_path):
        trace = tmp_path / "chaos-trace.json"
        metrics = tmp_path / "chaos-metrics.jsonl"
        rc = main(
            self._args(
                "--batcher", "continuous",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
            )
        )
        assert rc == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("name") == "dispatch.megabatch" for e in events)
        records = [
            json.loads(line) for line in metrics.read_text().splitlines()
        ]
        kinds = {r["kind"] for r in records}
        assert kinds == {"span", "metric"}


class TestLoadtest:
    def test_quick_check_passes_and_writes_report(self, capsys, tmp_path):
        report = tmp_path / "slo-report.json"
        rc = main(
            [
                "loadtest",
                "--quick",
                "--check",
                "--report-out", str(report),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "all loadtest gates hold" in out
        assert "interactive" in out and "analytics" in out
        payload = json.loads(report.read_text())
        assert payload["gate_failures"] == []
        assert payload["oracle_checked"] > 0
        assert set(payload["tenants"]) == {"interactive", "analytics"}

    def test_quick_run_is_seed_deterministic(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["loadtest", "--quick", "--report-out", str(a)]) == 0
        assert main(["loadtest", "--quick", "--report-out", str(b)]) == 0
        capsys.readouterr()
        assert json.loads(a.read_text()) == json.loads(b.read_text())

    def test_invalid_load_rejected(self, capsys):
        assert main(["loadtest", "--slo-load", "1.5"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestExplain:
    def _args(self, *extra):
        return ["explain", "--quick", "--seed", "7", *extra]

    def test_quick_check_holds(self, capsys):
        rc = main(self._args("--check"))
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "critical path" in out
        assert "kernel profile" in out
        assert "all explain checks hold" in out

    def test_knobs_and_json_export(self, capsys, tmp_path):
        report = tmp_path / "explain.json"
        rc = main(self._args("--knobs", "--json", str(report)))
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "knob sensitivity" in out
        assert "most sensitive:" in out
        payload = json.loads(report.read_text())
        assert payload["critical_path"]["requests"]
        assert [k["knob"] for k in payload["knobs"]]

    def test_trace_out_carries_critical_lane(self, capsys, tmp_path):
        trace = tmp_path / "explain-trace.json"
        rc = main(self._args("--trace-out", str(trace)))
        capsys.readouterr()
        assert rc == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("cat") == "critical-path" for e in events)

    def test_zero_requests_rejected(self, capsys):
        assert main(["explain", "--requests", "0"]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestBenchBaseline:
    def _run(self, history):
        return ["bench", "--quick", "--baseline", str(history)]

    def test_baseline_lifecycle_and_injected_regression(
        self, capsys, tmp_path
    ):
        history = tmp_path / "history"
        # run 1: no history yet -> record appended, vacuous pass
        rc = main(self._run(history))
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "bench history record appended" in out
        assert "baseline gate: PASS" in out
        records = sorted(history.glob("record-*.json"))
        assert [p.name for p in records] == ["record-0000.json"]

        # run 2: same seed, same shape -> gated against run 1, passes
        rc = main(self._run(history))
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "baseline gate: PASS" in out
        assert len(sorted(history.glob("record-*.json"))) == 2

        # inject a synthetic regression: rewrite history so every prior
        # run looks 2x faster than reality on a hard metric
        for path in history.glob("record-*.json"):
            rec = json.loads(path.read_text())
            rec["metrics"]["modelled_us"] *= 0.5
            path.write_text(json.dumps(rec))
        rc = main(self._run(history))
        out = capsys.readouterr().out
        assert rc == 1, out
        assert "baseline gate: FAIL" in out
        assert "FAIL modelled_us" in out
        # the regressed run is still recorded as a data point
        assert len(sorted(history.glob("record-*.json"))) == 3

    def test_invalid_history_k_rejected(self, capsys, tmp_path):
        rc = main(
            self._run(tmp_path / "h") + ["--history-k", "0"]
        )
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")


class TestMetrics:
    def test_prometheus_exposition_checked(self, capsys):
        assert main(["metrics", "--quick", "--check"]) == 0
        out = capsys.readouterr().out
        assert "serving_requests_total" in out
        assert "prometheus exposition OK" in out

    def test_json_format(self, capsys):
        assert main(["metrics", "--quick", "--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        names = {e["name"] for e in entries}
        assert "serving_requests_total" in names

    def test_text_format_is_slo_summary(self, capsys):
        assert main(["metrics", "--quick", "--format", "text"]) == 0
        assert "== SLO ==" in capsys.readouterr().out

    def test_out_writes_file(self, capsys, tmp_path):
        out_path = tmp_path / "m.prom"
        assert main(
            ["metrics", "--quick", "--out", str(out_path)]
        ) == 0
        from repro.telemetry import parse_prometheus

        series = parse_prometheus(out_path.read_text())
        assert any(k.startswith("serving_requests_total") for k in series)


class TestErrorContract:
    """Invalid arguments exit with code 2 and a one-line message — never
    a raw traceback."""

    def test_command_level_error_is_one_line(self, capsys):
        rc = main(
            [
                "serve-chaos",
                "--requests", "10",
                "--fault-rate", "1.5",
            ]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_zero_requests_rejected(self, capsys):
        assert main(["serve-chaos", "--requests", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_bad_device_rejected(self, capsys):
        # argparse choice errors keep the same exit-2 contract
        with pytest.raises(SystemExit) as exc:
            main(["profile", "--device", "TPU-v9"])
        assert exc.value.code == 2
        assert "Traceback" not in capsys.readouterr().err

    def test_argparse_errors_also_exit_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve-chaos", "--requests", "not-a-number"])
        assert exc.value.code == 2


class TestSummary:
    def test_summary_fast(self, capsys):
        assert main(["experiments", "--summary", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out
        assert "Fig 14" in out

    def test_summary_markdown(self, capsys):
        assert main(["experiments", "--summary", "--fast", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| claim | paper | ours |")
