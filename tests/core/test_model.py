"""End-to-end model: multi-layer equivalence and statistics."""

import numpy as np
import pytest

from repro.core.config import BASELINE, FUSED_MHA, RM_PADDING, STEPWISE_PRESETS, BertConfig
from repro.core.model import BertEncoderModel
from repro.core.reference import reference_encoder
from repro.core.weights import init_model_weights
from repro.gpusim import ExecutionContext


class TestEquivalence:
    @pytest.mark.parametrize(
        "opt", STEPWISE_PRESETS, ids=lambda o: o.label
    )
    def test_matches_reference(
        self, opt, small_config, small_weights, small_batch
    ):
        model = BertEncoderModel(small_config, opt, weights=small_weights)
        out = model.forward(small_batch.x, small_batch.mask)
        ref = reference_encoder(
            small_batch.x, small_weights, small_config, small_batch.mask
        )
        valid = small_batch.mask.astype(bool)
        np.testing.assert_allclose(
            out[valid], ref[valid], rtol=1e-3, atol=1e-4
        )

    def test_padding_rows_zeroed_everywhere(
        self, small_config, small_weights, small_batch
    ):
        for opt in (BASELINE, FUSED_MHA):
            model = BertEncoderModel(small_config, opt, weights=small_weights)
            out = model.forward(small_batch.x, small_batch.mask)
            pad = small_batch.mask == 0
            assert (out[pad] == 0).all(), opt.label

    def test_packed_and_padded_models_agree(
        self, small_config, small_weights, small_batch
    ):
        outs = []
        for opt in (BASELINE, RM_PADDING, FUSED_MHA):
            model = BertEncoderModel(small_config, opt, weights=small_weights)
            outs.append(model.forward(small_batch.x, small_batch.mask))
        np.testing.assert_allclose(outs[0], outs[1], rtol=1e-3, atol=1e-4)
        np.testing.assert_allclose(outs[0], outs[2], rtol=1e-3, atol=1e-4)


class TestStats:
    def test_forward_with_stats(self, small_config, small_weights, small_batch):
        model = BertEncoderModel(
            small_config, FUSED_MHA, weights=small_weights
        )
        result = model.forward_with_stats(small_batch.x, small_batch.mask)
        assert result.time_us > 0
        assert result.kernel_count > 0
        assert result.flops > 0
        assert result.hidden.shape == small_batch.x.shape

    def test_fused_model_faster_than_baseline(
        self, small_config, small_weights, small_batch
    ):
        times = {}
        for opt in (BASELINE, FUSED_MHA):
            model = BertEncoderModel(small_config, opt, weights=small_weights)
            ctx = ExecutionContext()
            model.forward(small_batch.x, small_batch.mask, ctx=ctx)
            times[opt.label] = ctx.elapsed_us()
        assert times["fused MHA"] < times["baseline"]

    def test_layers_scale_kernels(self, small_config, small_batch):
        one = BertEncoderModel(
            BertConfig(
                num_heads=small_config.num_heads,
                head_size=small_config.head_size,
                num_layers=1,
            ),
            BASELINE,
        )
        two = BertEncoderModel(
            BertConfig(
                num_heads=small_config.num_heads,
                head_size=small_config.head_size,
                num_layers=2,
            ),
            BASELINE,
        )
        r1 = one.forward_with_stats(small_batch.x, small_batch.mask)
        r2 = two.forward_with_stats(small_batch.x, small_batch.mask)
        assert r2.kernel_count == 2 * r1.kernel_count


class TestValidation:
    def test_weight_layer_mismatch(self, small_config, small_weights):
        deeper = BertConfig(
            num_heads=small_config.num_heads,
            head_size=small_config.head_size,
            num_layers=5,
        )
        with pytest.raises(ValueError, match="layers"):
            BertEncoderModel(deeper, weights=small_weights)

    def test_hidden_size_mismatch(self, small_config):
        other = BertConfig(num_heads=2, head_size=8, num_layers=2)
        wrong = init_model_weights(other, seed=0)
        with pytest.raises(ValueError, match="hidden"):
            BertEncoderModel(small_config, weights=wrong)

    def test_input_rank_checked(self, small_config, small_weights, small_batch):
        model = BertEncoderModel(small_config, weights=small_weights)
        with pytest.raises(ValueError, match=r"\[B, S, H\]"):
            model.forward(small_batch.x[0], small_batch.mask)

    def test_mask_shape_checked(self, small_config, small_weights, small_batch):
        model = BertEncoderModel(small_config, weights=small_weights)
        with pytest.raises(ValueError, match="mask"):
            model.forward(small_batch.x, small_batch.mask[:-1])

    def test_hidden_dim_checked(self, small_config, small_weights, small_batch):
        model = BertEncoderModel(small_config, weights=small_weights)
        with pytest.raises(ValueError, match="hidden"):
            model.forward(
                small_batch.x[:, :, :-1], small_batch.mask
            )
