"""Live arena: reuse, growth, aliasing, planner agreement, bit parity."""

import dataclasses

import numpy as np
import pytest

from repro.attention.bucketed import (
    acquire_bucket_scratch,
    build_buckets,
    release_bucket_scratch,
)
from repro.core.config import STEPWISE_PRESETS, BertConfig
from repro.core.memory_planner import (
    ArenaAllocator,
    LiveArena,
    peak_live_bytes,
    plan_live_forward,
)
from repro.core.model import BertEncoderModel
from repro.core.padding import packing_from_lengths
from repro.core.parallel import use_workers

# the PR 1 equivalence matrix: every shape class the bucketed engine
# must handle (mirrors tests/attention/test_bucketed_equivalence.py)
LENGTH_CASES = {
    "uniform": [31, 7, 44, 18, 25, 12],
    "normal": [22, 27, 24, 30, 19, 26, 23],
    "zipf": [1, 1, 2, 3, 1, 9, 2, 48],
    "all_equal": [24, 24, 24, 24],
    "all_distinct": [5, 12, 19, 26, 33, 40, 47],
    "batch_of_one": [37],
    "length_one": [1, 48, 16],
}
MAX_SEQ = 48
CONFIG = BertConfig(num_layers=2, num_heads=4, head_size=16)
FUSED = STEPWISE_PRESETS[-1]  # "fused MHA"


def _batch(lengths, seed=0, dtype=np.float32):
    rng = np.random.default_rng(seed)
    batch = len(lengths)
    x = rng.standard_normal(
        (batch, MAX_SEQ, CONFIG.hidden_size)
    ).astype(dtype)
    mask = np.zeros((batch, MAX_SEQ), dtype=np.int64)
    for row, length in enumerate(lengths):
        mask[row, :length] = 1
    return x, mask


class TestArenaMechanics:
    def test_take_shape_and_dtype(self):
        arena = LiveArena()
        arena.begin()
        buf = arena.take("a", (3, 5), np.float32)
        assert buf.shape == (3, 5) and buf.dtype == np.float32

    def test_backing_grows_only_at_begin(self):
        arena = LiveArena()
        arena.begin()
        assert arena.footprint_bytes == 0
        arena.take("a", (1024,))  # overflow: served by np.empty
        assert arena.overflow_allocs == 1
        assert arena.footprint_bytes == 0  # no growth mid-forward
        arena.begin()
        assert arena.footprint_bytes >= 1024 * 8
        arena.take("a", (1024,))
        assert arena.overflow_allocs == 1  # steady state: no new overflow
        assert arena.in_steady_state

    def test_steady_state_views_are_backing_views(self):
        arena = LiveArena()
        arena.begin()
        arena.take("a", (64,))
        arena.begin()
        buf = arena.take("a", (64,))
        assert buf.base is not None  # a view, not an owning array

    def test_live_buffers_never_overlap(self):
        arena = LiveArena()
        for _ in range(2):  # warm-up then steady state
            arena.begin()
            live = {
                name: arena.take(name, (97,), np.float64)
                for name in ("a", "b", "c", "d")
            }
            for i, x in enumerate(live.values()):
                for y in list(live.values())[i + 1:]:
                    assert not np.shares_memory(x, y)
        assert arena.in_steady_state

    def test_release_enables_reuse(self):
        arena = LiveArena()
        arena.begin()
        arena.take("a", (128,))
        arena.release("a")
        arena.take("b", (128,))
        arena.begin()
        a = arena.take("a", (128,))
        arena.release("a")
        b = arena.take("b", (128,))
        # best-fit hands b the slot a vacated: zero extra footprint
        assert np.shares_memory(a, b)
        assert arena.footprint_bytes == a.nbytes

    def test_peak_live_tracks_raw_bytes(self):
        arena = LiveArena()
        arena.begin()
        arena.take("a", (100,), np.float32)
        arena.take("b", (50,), np.float32)
        arena.release("a")
        arena.take("c", (25,), np.float32)
        assert arena.peak_live_bytes == 150 * 4

    def test_bucket_scratch_no_aliasing_across_buckets(self):
        # parallel bucket execution relies on pre-acquired, disjoint
        # buffers; any aliasing would be a data race on the worker pool
        packing = packing_from_lengths(
            np.array([7, 31, 31, 44]), MAX_SEQ, cache=None
        )
        buckets = build_buckets(packing)
        assert len(buckets) > 1
        arena = LiveArena()
        for _ in range(2):
            arena.begin()
            bufs = acquire_bucket_scratch(
                arena, buckets, CONFIG.num_heads, CONFIG.head_size,
                np.dtype(np.float64),
            )
            arrays = [a for per_bucket in bufs for a in per_bucket.values()]
            for i, x in enumerate(arrays):
                for y in arrays[i + 1:]:
                    assert not np.shares_memory(x, y)
            release_bucket_scratch(arena, len(buckets))


class TestPlannerAgreement:
    @pytest.mark.parametrize("case", sorted(LENGTH_CASES))
    def test_observed_peak_within_offline_prediction(self, case):
        lengths = LENGTH_CASES[case]
        x, mask = _batch(lengths)
        model = BertEncoderModel(CONFIG, opt=FUSED, arena=LiveArena())
        for _ in range(2):
            model.forward(x, mask)
        trace = plan_live_forward(
            CONFIG, FUSED, np.array(lengths), MAX_SEQ, dtype=x.dtype
        )
        assert model.arena.peak_live_bytes <= peak_live_bytes(trace)
        predicted_arena = ArenaAllocator(model.arena.alignment).replay(trace)
        assert model.arena.footprint_bytes <= predicted_arena
        assert model.arena.in_steady_state
        # converged: one more forward performs zero overflow allocations
        overflow_before = model.arena.overflow_allocs
        model.forward(x, mask)
        assert model.arena.overflow_allocs == overflow_before


class TestBitParity:
    @pytest.mark.parametrize("case", sorted(LENGTH_CASES))
    def test_arena_on_off_bitwise_equal(self, case):
        lengths = LENGTH_CASES[case]
        x, mask = _batch(lengths)
        plain = BertEncoderModel(CONFIG, opt=FUSED, seed=3)
        backed = BertEncoderModel(
            CONFIG, opt=FUSED, seed=3, arena=LiveArena()
        )
        want = plain.forward(x, mask)
        for _ in range(3):  # warm-up, growth, steady state
            got = backed.forward(x, mask)
            assert np.array_equal(got, want)

    def test_forced_long_path_bitwise_equal(self):
        # drive every sequence through the grouped long kernel (the only
        # dtype-gated scratch path) in float64
        opt = dataclasses.replace(FUSED, fused_mha_short_max_seq=1)
        x, mask = _batch(LENGTH_CASES["uniform"], dtype=np.float64)
        plain = BertEncoderModel(CONFIG, opt=opt, seed=3)
        backed = BertEncoderModel(CONFIG, opt=opt, seed=3, arena=LiveArena())
        want = plain.forward(x, mask)
        for _ in range(3):
            assert np.array_equal(backed.forward(x, mask), want)

    def test_parallel_workers_bitwise_equal(self):
        x, mask = _batch(LENGTH_CASES["all_distinct"])
        model = BertEncoderModel(CONFIG, opt=FUSED, seed=5, arena=LiveArena())
        serial = model.forward(x, mask).copy()  # output is an arena view
        with use_workers(2):
            parallel = model.forward(x, mask)
        assert np.array_equal(parallel, serial)

    def test_output_view_invalidated_by_next_forward(self):
        # documents the arena contract: the returned tensor is a view
        # valid only until the next forward on the same model
        x, mask = _batch(LENGTH_CASES["all_equal"])
        model = BertEncoderModel(CONFIG, opt=FUSED, arena=LiveArena())
        model.forward(x, mask)
        first = model.forward(x, mask)
        second = model.forward(x, mask)
        assert np.shares_memory(first, second)


class TestPlanDrivenPresize:
    @pytest.mark.parametrize("case", sorted(LENGTH_CASES))
    def test_first_forward_never_overflows(self, case):
        # satellite gate: the mask-path forward pre-sizes the arena from
        # the shape's symbolic plan, so even the *first* forward per
        # shape is served entirely from the backing buffer
        x, mask = _batch(LENGTH_CASES[case])
        arena = LiveArena()
        model = BertEncoderModel(CONFIG, opt=FUSED, seed=3, arena=arena)
        model.forward(x, mask)
        assert arena.overflow_allocs == 0
        assert arena.in_steady_state

    def test_new_shape_presizes_again(self):
        arena = LiveArena()
        model = BertEncoderModel(CONFIG, opt=FUSED, seed=3, arena=arena)
        for case in ("zipf", "uniform", "all_equal"):
            x, mask = _batch(LENGTH_CASES[case])
            model.forward(x, mask)
        assert arena.overflow_allocs == 0


class TestSharedBacking:
    def test_take_views_are_shared_memory_backed(self):
        arena = LiveArena(shared=True)
        arena.reserve(16 * 8 * 8)
        arena.begin()
        buf = arena.take("a", (16, 8), np.float64)
        assert arena.shared
        assert arena.owns(buf)
        buf[:] = 7.0
        assert float(buf.sum()) == 7.0 * 16 * 8
        arena.close()

    def test_overflow_buffers_are_private(self):
        arena = LiveArena(shared=True)
        arena.begin()
        # nothing reserved: a huge take overflows to a private np.empty
        overflow = arena.take("big", (1024, 1024), np.float64)
        assert arena.overflow_allocs == 1
        assert not arena.owns(overflow)
        arena.close()

    def test_forked_child_writes_visible_to_parent(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform lacks fork")
        arena = LiveArena(shared=True)
        arena.reserve(64 * 8)
        arena.begin()
        view = arena.take("shared", (64,), np.float64)
        assert arena.owns(view)
        view[:] = 0.0

        def child_body():
            view[:] = 42.0  # inherited MAP_SHARED view

        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=child_body)
        proc.start()
        proc.join()
        assert proc.exitcode == 0
        np.testing.assert_array_equal(view, np.full(64, 42.0))
        arena.close()

    def test_close_with_stale_views_does_not_raise(self):
        arena = LiveArena(shared=True)
        arena.reserve(8 * 8 * 8)
        arena.begin()
        stale = arena.take("x", (8, 8), np.float64)  # pins the mapping
        arena.close()
        assert arena.footprint_bytes == 0
        assert stale.shape == (8, 8)  # the view itself stays readable

    def test_growth_retires_outgrown_blocks(self):
        arena = LiveArena(shared=True)
        arena.reserve(arena.alignment)  # one aligned block: fits "a" only
        arena.begin()
        first = arena.take("a", (4, 4), np.float64)
        assert arena.owns(first)
        # this take outgrows the backing: served privately this forward,
        # then the next begin() grows a new block and retires the old
        # one while `first` still pins it
        assert not arena.owns(arena.take("b", (512, 512), np.float64))
        arena.begin()
        arena.take("a", (4, 4), np.float64)
        buf = arena.take("b", (512, 512), np.float64)
        assert arena.owns(buf)
        del first
        arena.close()

    def test_shared_model_forward_bitwise_equal_private(self):
        x, mask = _batch(LENGTH_CASES["uniform"])
        private = BertEncoderModel(
            CONFIG, opt=FUSED, seed=3, arena=LiveArena()
        )
        shared = BertEncoderModel(
            CONFIG, opt=FUSED, seed=3, arena=LiveArena(shared=True)
        )
        for _ in range(2):
            want = private.forward(x, mask)
            got = shared.forward(x, mask)
            assert np.array_equal(got, want)


class TestScratchPool:
    def test_reuses_backing_across_takes(self):
        from repro.core.memory_planner import ScratchPool

        pool = ScratchPool()
        a = pool.take((32, 16), np.float64)
        b = pool.take((16, 32), np.float64)  # same bytes, new shape
        assert np.shares_memory(a, b)
        c = pool.take((64, 64), np.float64)  # grows the high-water buf
        assert c.shape == (64, 64)
        d = pool.take((8, 8), np.float64)
        assert np.shares_memory(c, d)

    def test_dtypes_do_not_collide(self):
        from repro.core.memory_planner import ScratchPool

        pool = ScratchPool()
        a = pool.take((16,), np.float64)
        b = pool.take((16,), np.float32)
        assert not np.shares_memory(a, b)

    def test_thread_locality(self):
        import threading

        from repro.core.memory_planner import ScratchPool

        pool = ScratchPool()
        mine = pool.take((16,), np.float64)
        theirs = []

        def body():
            theirs.append(pool.take((16,), np.float64))

        t = threading.Thread(target=body)
        t.start()
        t.join()
        assert not np.shares_memory(mine, theirs[0])
