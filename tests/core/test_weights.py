"""Weight containers: shapes, determinism, packed-QKV views."""

import numpy as np
import pytest

from repro.core.config import BertConfig
from repro.core.weights import (
    LayerWeights,
    ModelWeights,
    init_model_weights,
)


class TestInit:
    def test_shapes(self, small_config, small_layer):
        h = small_config.hidden_size
        f = small_config.ffn_size
        assert small_layer.qkv_weight.shape == (h, 3 * h)
        assert small_layer.ffn_in_weight.shape == (h, f)
        assert small_layer.ffn_out_weight.shape == (f, h)
        assert small_layer.hidden_size == h

    def test_deterministic(self, small_config):
        a = init_model_weights(small_config, seed=3)
        b = init_model_weights(small_config, seed=3)
        np.testing.assert_array_equal(
            a.layers[0].qkv_weight, b.layers[0].qkv_weight
        )

    def test_seed_changes_weights(self, small_config):
        a = init_model_weights(small_config, seed=3)
        b = init_model_weights(small_config, seed=4)
        assert not np.array_equal(a.layers[0].qkv_weight, b.layers[0].qkv_weight)

    def test_layers_differ(self, small_weights):
        assert not np.array_equal(
            small_weights.layers[0].qkv_weight,
            small_weights.layers[1].qkv_weight,
        )

    def test_layer_count(self, small_config, small_weights):
        assert small_weights.num_layers == small_config.num_layers

    def test_float32_storage(self, small_layer):
        assert small_layer.qkv_weight.dtype == np.float32


class TestQkvViews:
    def test_views_partition_packed_weight(self, small_layer):
        h = small_layer.hidden_size
        np.testing.assert_array_equal(
            small_layer.q_weight(), small_layer.qkv_weight[:, :h]
        )
        np.testing.assert_array_equal(
            small_layer.k_weight(), small_layer.qkv_weight[:, h : 2 * h]
        )
        np.testing.assert_array_equal(
            small_layer.v_weight(), small_layer.qkv_weight[:, 2 * h :]
        )

    def test_views_are_views_not_copies(self, small_layer):
        assert small_layer.q_weight().base is small_layer.qkv_weight

    def test_packed_projection_equals_separate(self, small_layer, rng):
        """x @ packed == concat of the three separate projections — the
        property that lets the paper launch one GEMM for Q, K, V."""
        x = rng.normal(size=(5, small_layer.hidden_size)).astype(np.float32)
        packed = x @ small_layer.qkv_weight
        separate = np.concatenate(
            [
                x @ small_layer.q_weight(),
                x @ small_layer.k_weight(),
                x @ small_layer.v_weight(),
            ],
            axis=1,
        )
        np.testing.assert_allclose(packed, separate, rtol=1e-5)


class TestValidation:
    def test_bad_shape_rejected(self, small_layer):
        import dataclasses

        with pytest.raises(ValueError, match="attn_out_weight"):
            dataclasses.replace(
                small_layer,
                attn_out_weight=np.zeros((3, 3), dtype=np.float32),
            )

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError, match="at least one layer"):
            ModelWeights(layers=())
