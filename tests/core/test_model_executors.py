"""Executor equivalence: serial, thread and process fan-out.

The tentpole invariant of host-path parallelism: how megabatch segment
chunks fan out across the host — inline, pool threads, or forked
shared-memory workers — may change only wall-clock.  Over the length
distribution matrix the vectorized engine is gated on, outputs stay
bitwise-identical to the serial path, the modelled launch stream and
timeline are untouched, and seeded-chaos serving replays (retries,
deadlines, degradation, telemetry) are unperturbed.
"""

import numpy as np
import pytest

from repro.core.config import FUSED_MHA, BertConfig
from repro.core.memory_planner import LiveArena
from repro.core.model import BertEncoderModel
from repro.core.padding import merge_request_lengths, pack_segments
from repro.core.parallel import fork_available, make_executor, use_executor
from repro.gpusim import ExecutionContext
from repro.serving import DegradationLadder, FaultSpec, ServingRuntime
from repro.telemetry import Telemetry
from repro.workloads.batching import ContinuousBatcher
from repro.workloads.generator import LengthDistribution, make_batch
from repro.workloads.serving import make_trace

MAX_SEQ = 16
CONFIG = BertConfig(num_heads=4, head_size=16, num_layers=2)
CHAOS = FaultSpec(
    launch_failure_rate=0.06,
    transient_oom_rate=0.04,
    slow_rate=0.05,
    slow_factor=4.0,
    target_prefixes=("fused_mha", "fmha_"),
)

#: every executor kind at a fan-out width that exercises it
EXECUTORS = [("serial", 1), ("thread", 3), ("process", 2)]

DISTRIBUTIONS = [
    LengthDistribution.UNIFORM,
    LengthDistribution.NORMAL,
    LengthDistribution.ZIPF,
]


def executors_available():
    return [
        (kind, workers)
        for kind, workers in EXECUTORS
        if kind != "process" or fork_available()
    ]


def make_tile(distribution, alpha, hidden, seed=3):
    """A packed megabatch whose lengths follow the PR-1 matrix cell."""
    lens = make_batch(
        12, MAX_SEQ, hidden, alpha=alpha, distribution=distribution,
        seed=seed,
    ).seq_lens
    tile = -(-int(lens.sum()) // 64) * 64
    mega = merge_request_lengths(lens, MAX_SEQ, tile)
    rng = np.random.default_rng(seed + 1)
    segments = [rng.normal(size=(length, hidden)) for length in lens]
    return mega, pack_segments(segments, mega)


class TestForwardPackedEquivalence:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @pytest.mark.parametrize("alpha", [0.3, 0.6, 0.95])
    def test_bitwise_equal_over_length_matrix(
        self, small_config, small_weights, distribution, alpha
    ):
        mega, x_tile = make_tile(
            distribution, alpha, small_config.hidden_size
        )
        outputs, streams, elapsed = {}, {}, {}
        for kind, workers in executors_available():
            # the process executor writes through a shared-memory arena;
            # the others get a private one so the arena path is the same
            model = BertEncoderModel(
                small_config,
                FUSED_MHA,
                weights=small_weights,
                arena=LiveArena(shared=(kind == "process")),
            )
            ctx = ExecutionContext()
            with use_executor(make_executor(kind, workers)):
                out = model.forward_packed(x_tile.copy(), mega, ctx=ctx)
            outputs[kind] = out.copy()
            streams[kind] = [r.launch for r in ctx.records]
            elapsed[kind] = ctx.elapsed_us()
        for kind in outputs:
            np.testing.assert_array_equal(outputs[kind], outputs["serial"])
            assert streams[kind] == streams["serial"]
            assert elapsed[kind] == elapsed["serial"]

    def test_no_arena_fallback_matches_serial(
        self, small_config, small_weights
    ):
        # without an arena the process path falls back to per-chunk
        # scratch; thread fan-out writes the shared np.empty directly —
        # both must still produce the serial bits
        mega, x_tile = make_tile(
            LengthDistribution.ZIPF, 0.6, small_config.hidden_size
        )
        model = BertEncoderModel(
            small_config, FUSED_MHA, weights=small_weights
        )
        expected = model.forward_packed(x_tile.copy(), mega).copy()
        for kind, workers in executors_available():
            with use_executor(make_executor(kind, workers)):
                got = model.forward_packed(x_tile.copy(), mega)
            np.testing.assert_array_equal(got, expected)


def run_chaos_replay(executor, workers, telemetry=None):
    trace = make_trace(
        32, 96, mean_interarrival_us=250.0, seed=5, deadline_us=50_000.0
    )
    runtime = ServingRuntime(
        CONFIG,
        batcher=ContinuousBatcher(token_budget=1024),
        ladder=DegradationLadder(
            trip_threshold=2, window_us=20_000.0, cooldown_us=15_000.0
        ),
        faults=CHAOS,
        numerics=BertEncoderModel(CONFIG, seed=11),
        seed=11,
        workers=workers,
        executor=executor,
        telemetry=telemetry,
    )
    return runtime.run(trace)


class TestServingEquivalence:
    @pytest.mark.parametrize(
        "executor,workers",
        [(k, w) for k, w in EXECUTORS if k != "serial"],
    )
    def test_seeded_chaos_replay_identical(self, executor, workers):
        # retries, shedding and the degradation ladder all fire under
        # chaos; fanning the numeric plane out across workers must not
        # move a single outcome, fault, transition or output bit
        if executor == "process" and not fork_available():
            pytest.skip("platform lacks the fork start method")
        base = run_chaos_replay("serial", 1)
        par = run_chaos_replay(executor, workers)
        assert par.outcome_log() == base.outcome_log()
        assert par.injected_faults == base.injected_faults
        assert par.transitions == base.transitions
        assert par.gpu_busy_us == base.gpu_busy_us
        assert par.makespan_us == base.makespan_us
        assert set(par.outputs) == set(base.outputs)
        for rid in base.outputs:
            assert np.array_equal(par.outputs[rid], base.outputs[rid])

    def test_telemetry_neutral_under_process_executor(self):
        if not fork_available():
            pytest.skip("platform lacks the fork start method")
        tel = Telemetry()
        off = run_chaos_replay("process", 2)
        on = run_chaos_replay("process", 2, telemetry=tel)
        assert on.outcome_log() == off.outcome_log()
        assert on.makespan_us == off.makespan_us
        for rid in off.outputs:
            assert np.array_equal(on.outputs[rid], off.outputs[rid])
        # and the observer really observed: spans drained, metrics live
        assert tel.tracer.depth == 0
        assert tel.kernel_event_count() > 0
        assert len(tel.metrics) > 0
