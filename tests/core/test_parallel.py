"""BucketExecutor semantics: ordering, fan-out, context stacking."""

import threading

import pytest

from repro.core.parallel import (
    SERIAL_EXECUTOR,
    BucketExecutor,
    current_executor,
    use_executor,
    use_workers,
)


class TestBucketExecutor:
    def test_workers_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            BucketExecutor(0)

    def test_serial_map_is_a_plain_loop(self):
        ex = BucketExecutor(1)
        order = []

        def fn(i):
            order.append(i)
            return i * i

        assert ex.map(fn, range(5)) == [0, 1, 4, 9, 16]
        assert order == [0, 1, 2, 3, 4]  # submission order, inline
        assert ex._pool is None  # never creates a pool

    def test_single_item_stays_inline_even_with_workers(self):
        ex = BucketExecutor(4)
        main = threading.current_thread()
        threads = ex.map(lambda i: threading.current_thread(), [0])
        assert threads == [main]
        assert ex._pool is None
        ex.shutdown()

    def test_parallel_map_preserves_item_order(self):
        import time

        with BucketExecutor(4) as ex:
            # earlier items sleep longer: completion order is reversed,
            # result order must not be
            def fn(i):
                time.sleep(0.02 * (4 - i))
                return i

            assert ex.map(fn, range(4)) == [0, 1, 2, 3]

    def test_parallel_map_uses_worker_threads(self):
        with BucketExecutor(2) as ex:
            names = ex.map(
                lambda i: threading.current_thread().name, range(4)
            )
        assert all(n.startswith("bucket-worker") for n in names)

    def test_worker_exception_propagates(self):
        def boom(i):
            raise RuntimeError(f"item {i}")

        with BucketExecutor(2) as ex:
            with pytest.raises(RuntimeError, match="item"):
                ex.map(boom, range(3))

    def test_shutdown_is_reentrant_and_pool_recreated(self):
        ex = BucketExecutor(2)
        assert ex.map(lambda i: i + 1, range(3)) == [1, 2, 3]
        ex.shutdown()
        ex.shutdown()  # second shutdown is a no-op
        assert ex.map(lambda i: i + 1, range(3)) == [1, 2, 3]
        ex.shutdown()


class TestCurrentExecutor:
    def test_default_is_serial(self):
        assert current_executor() is SERIAL_EXECUTOR

    def test_use_executor_nests(self):
        a, b = BucketExecutor(1), BucketExecutor(1)
        with use_executor(a):
            assert current_executor() is a
            with use_executor(b):
                assert current_executor() is b
            assert current_executor() is a
        assert current_executor() is SERIAL_EXECUTOR

    def test_use_workers_shuts_down_on_exit(self):
        with use_workers(2) as ex:
            assert current_executor() is ex
            ex.map(lambda i: i, range(4))
            assert ex._pool is not None
        assert ex._pool is None
        assert current_executor() is SERIAL_EXECUTOR

    def test_use_executor_restores_on_exception(self):
        ex = BucketExecutor(1)
        with pytest.raises(RuntimeError):
            with use_executor(ex):
                raise RuntimeError("boom")
        assert current_executor() is SERIAL_EXECUTOR
