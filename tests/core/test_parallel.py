"""Executor semantics: ordering, fan-out, context stacking, forking."""

import threading

import numpy as np
import pytest

from repro.core.parallel import (
    SERIAL_EXECUTOR,
    BucketExecutor,
    ProcessExecutor,
    current_executor,
    fork_available,
    inplace_executor,
    make_executor,
    partition_weighted,
    use_executor,
    use_workers,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


class TestBucketExecutor:
    def test_workers_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            BucketExecutor(0)

    def test_serial_map_is_a_plain_loop(self):
        ex = BucketExecutor(1)
        order = []

        def fn(i):
            order.append(i)
            return i * i

        assert ex.map(fn, range(5)) == [0, 1, 4, 9, 16]
        assert order == [0, 1, 2, 3, 4]  # submission order, inline
        assert ex._pool is None  # never creates a pool

    def test_single_item_stays_inline_even_with_workers(self):
        ex = BucketExecutor(4)
        main = threading.current_thread()
        threads = ex.map(lambda i: threading.current_thread(), [0])
        assert threads == [main]
        assert ex._pool is None
        ex.shutdown()

    def test_parallel_map_preserves_item_order(self):
        import time

        with BucketExecutor(4) as ex:
            # earlier items sleep longer: completion order is reversed,
            # result order must not be
            def fn(i):
                time.sleep(0.02 * (4 - i))
                return i

            assert ex.map(fn, range(4)) == [0, 1, 2, 3]

    def test_parallel_map_uses_worker_threads(self):
        with BucketExecutor(2) as ex:
            names = ex.map(
                lambda i: threading.current_thread().name, range(4)
            )
        assert all(n.startswith("bucket-worker") for n in names)

    def test_worker_exception_propagates(self):
        def boom(i):
            raise RuntimeError(f"item {i}")

        with BucketExecutor(2) as ex:
            with pytest.raises(RuntimeError, match="item"):
                ex.map(boom, range(3))

    def test_shutdown_is_reentrant_and_pool_recreated(self):
        ex = BucketExecutor(2)
        assert ex.map(lambda i: i + 1, range(3)) == [1, 2, 3]
        ex.shutdown()
        ex.shutdown()  # second shutdown is a no-op
        assert ex.map(lambda i: i + 1, range(3)) == [1, 2, 3]
        ex.shutdown()


class TestCurrentExecutor:
    def test_default_is_serial(self):
        assert current_executor() is SERIAL_EXECUTOR

    def test_use_executor_nests(self):
        a, b = BucketExecutor(1), BucketExecutor(1)
        with use_executor(a):
            assert current_executor() is a
            with use_executor(b):
                assert current_executor() is b
            assert current_executor() is a
        assert current_executor() is SERIAL_EXECUTOR

    def test_use_workers_shuts_down_on_exit(self):
        with use_workers(2) as ex:
            assert current_executor() is ex
            ex.map(lambda i: i, range(4))
            assert ex._pool is not None
        assert ex._pool is None
        assert current_executor() is SERIAL_EXECUTOR

    def test_use_executor_restores_on_exception(self):
        ex = BucketExecutor(1)
        with pytest.raises(RuntimeError):
            with use_executor(ex):
                raise RuntimeError("boom")
        assert current_executor() is SERIAL_EXECUTOR

    def test_stack_is_thread_local(self):
        # a pool worker thread must see the serial default, not the
        # executor it is running under — submitting nested fan-outs back
        # into your own pool deadlocks it
        with use_workers(2) as ex:
            seen = ex.map(lambda i: current_executor(), range(4))
        assert all(e is SERIAL_EXECUTOR for e in seen)

    def test_nested_fanout_inside_worker_does_not_deadlock(self):
        def body(i):
            # would deadlock if this re-entered the 2-wide outer pool
            return sum(current_executor().map(lambda j: j * i, range(8)))

        with use_workers(2) as ex:
            assert ex.map(body, range(6)) == [28 * i for i in range(6)]

    def test_inplace_executor_demotes_process_to_serial(self):
        with use_executor(ProcessExecutor(4)):
            assert inplace_executor() is SERIAL_EXECUTOR
        thread_ex = BucketExecutor(3)
        with use_executor(thread_ex):
            assert inplace_executor() is thread_ex
        assert inplace_executor() is SERIAL_EXECUTOR


class TestPartitionWeighted:
    def test_covers_range_contiguously(self):
        parts = partition_weighted([3, 1, 4, 1, 5, 9, 2, 6], 3)
        assert parts[0][0] == 0 and parts[-1][1] == 8
        assert all(
            parts[i][1] == parts[i + 1][0] for i in range(len(parts) - 1)
        )
        assert all(end > start for start, end in parts)

    def test_balances_by_weight(self):
        # one huge item up front: it gets a chunk to itself
        parts = partition_weighted([100, 1, 1, 1, 1, 1], 3)
        assert parts[0] == (0, 1)

    def test_never_more_parts_than_items(self):
        assert partition_weighted([1.0, 2.0], 5) == [(0, 1), (1, 2)]

    def test_single_part_and_empty(self):
        assert partition_weighted([1, 2, 3], 1) == [(0, 3)]
        assert partition_weighted([], 4) == []

    def test_deterministic(self):
        w = np.arange(1, 40) % 7 + 1
        assert partition_weighted(w, 4) == partition_weighted(list(w), 4)

    def test_quadratic_mode_matches_squared_weights(self):
        lens = [32] + [8] * 12
        got = partition_weighted(lens, 2, quadratic=True)
        squared = partition_weighted([l * l for l in lens], 2)
        assert got == squared
        # by Σlen² the long sequence alone outweighs the rest combined
        # (32² > 12·8²), while by raw tokens it is only a quarter of the
        # total — quadratic mode must isolate it, linear must not
        assert got[0] == (0, 1)
        assert partition_weighted(lens, 2)[0] != (0, 1)

    def test_quadratic_balance_bound_on_zipf_lengths(self):
        # property: every chunk's Σlen² is within max(len²) of the ideal
        # total/parts share, for Zipf-mixed length profiles (the serving
        # traffic shape) across seeds and part counts
        rng = np.random.default_rng(7)
        for seed in range(8):
            lens = np.minimum(
                rng.zipf(1.3, size=96).astype(np.int64) * 8, 512
            )
            for parts in (2, 4, 8):
                chunks = partition_weighted(lens, parts, quadratic=True)
                work = np.asarray(
                    [float(np.sum(lens[s:e] ** 2)) for s, e in chunks]
                )
                ideal = float(np.sum(lens.astype(np.float64) ** 2)) / len(
                    chunks
                )
                bound = float(np.max(lens.astype(np.float64) ** 2))
                assert np.max(work) <= ideal + bound + 1e-6
                assert np.min(work) >= ideal - bound - 1e-6


class TestMakeExecutor:
    def test_kinds(self):
        assert make_executor("serial", 8).workers == 1
        thread = make_executor("thread", 3)
        assert isinstance(thread, BucketExecutor) and thread.workers == 3
        proc = make_executor("process", 3)
        assert isinstance(proc, ProcessExecutor) and proc.workers == 3

    def test_kind_property(self):
        assert BucketExecutor(1).kind == "serial"
        assert BucketExecutor(2).kind == "thread"
        assert ProcessExecutor(2).kind == "process"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("greenlet", 2)


class TestProcessExecutor:
    def test_workers_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            ProcessExecutor(0)

    def test_serial_fast_path(self):
        ex = ProcessExecutor(1)
        main = threading.current_thread()
        assert ex.map(lambda i: threading.current_thread(), [0, 1]) == [
            main,
            main,
        ]

    @needs_fork
    def test_results_in_item_order(self):
        with ProcessExecutor(3) as ex:
            assert ex.map(lambda i: i * i, range(10)) == [
                i * i for i in range(10)
            ]

    @needs_fork
    def test_runs_in_separate_processes(self):
        import os

        parent = os.getpid()
        pids = ProcessExecutor(2).map(lambda i: os.getpid(), range(4))
        assert all(pid != parent for pid in pids)
        assert len(set(pids)) == 2  # one fork per chunk

    @needs_fork
    def test_closures_inherited_without_pickling(self):
        # a lambda over local state (unpicklable callables are fine:
        # nothing is pickled on the way in under fork)
        big = np.arange(1000)

        def body(i):
            return int(big[i]) + i

        assert ProcessExecutor(2).map(body, [1, 5, 9]) == [2, 10, 18]

    @needs_fork
    def test_worker_exception_propagates_with_traceback(self):
        def boom(i):
            if i == 3:
                raise KeyError(f"item {i}")
            return i

        with pytest.raises(RuntimeError, match="KeyError"):
            ProcessExecutor(2).map(boom, range(6))

    @needs_fork
    def test_parent_state_writes_die_with_the_fork(self):
        cell = {"value": 0}

        def mutate(i):
            cell["value"] = 99
            return cell["value"]

        assert ProcessExecutor(2).map(mutate, range(4)) == [99] * 4
        assert cell["value"] == 0

    @needs_fork
    def test_forked_child_runs_nested_fanout_serially(self):
        def body(i):
            # the child must not fork grandchildren: its inherited
            # executor stack is cleared on entry
            return current_executor() is SERIAL_EXECUTOR

        ex = ProcessExecutor(2)
        with use_executor(ex):
            assert ex.map(body, range(4)) == [True] * 4


class TestProcessExecutorRecovery:
    """Worker loss is survived: chunks re-run serially, bitwise-equal."""

    @needs_fork
    def test_killed_worker_chunk_recovered_bitwise(self):
        rows = np.arange(12, dtype=np.float64).reshape(4, 3)

        def body(i):
            return np.tanh(rows[i] * 0.5) + i

        expected = [body(i) for i in range(4)]
        ex = ProcessExecutor(
            2, fault_hook=lambda ordinal: "worker-kill" if ordinal == 0 else None
        )
        got = ex.map(body, range(4))
        assert all(np.array_equal(g, e) for g, e in zip(got, expected))
        assert ex.recoveries == ["died"]

    @needs_fork
    def test_hung_worker_reaped_by_wall_clock_guard(self):
        ex = ProcessExecutor(
            2,
            wall_clock_guard_s=0.5,
            fault_hook=lambda ordinal: "worker-hang" if ordinal == 1 else None,
        )
        assert ex.map(lambda i: i * 3, range(6)) == [0, 3, 6, 9, 12, 15]
        assert ex.recoveries == ["hung"]

    @needs_fork
    def test_every_worker_lost_still_completes(self):
        ex = ProcessExecutor(3, fault_hook=lambda ordinal: "worker-kill")
        assert ex.map(lambda i: i + 1, range(9)) == list(range(1, 10))
        assert ex.recoveries == ["died", "died", "died"]

    @needs_fork
    def test_recovery_counted_in_telemetry(self):
        from repro.telemetry import Telemetry, use_telemetry
        from repro.telemetry.slo import EXECUTOR_WORKER_RECOVERIES_TOTAL

        tel = Telemetry()
        ex = ProcessExecutor(
            2, fault_hook=lambda ordinal: "worker-kill" if ordinal == 0 else None
        )
        with use_telemetry(tel):
            ex.map(lambda i: i, range(4))
        counter = tel.metrics.counter(
            EXECUTOR_WORKER_RECOVERIES_TOTAL, kind="died"
        )
        assert counter.value == 1

    @needs_fork
    def test_arm_chaos_resets_ordinals_and_log(self):
        verdicts = []

        def hook(ordinal):
            verdicts.append(ordinal)
            return "worker-kill" if ordinal == 0 else None

        ex = ProcessExecutor(2, fault_hook=hook)
        ex.map(lambda i: i, range(4))
        assert ex.recoveries == ["died"]
        ex.arm_chaos(hook)  # fresh run: ordinals restart at 0
        ex.map(lambda i: i, range(4))
        assert verdicts == [0, 1, 0, 1]
        assert ex.recoveries == ["died"]  # log was reset, not appended

    @needs_fork
    def test_genuine_exception_still_raises_under_chaos(self):
        def boom(i):
            if i == 2:
                raise ValueError(f"item {i}")
            return i

        ex = ProcessExecutor(2, fault_hook=lambda ordinal: None)
        with pytest.raises(RuntimeError, match="ValueError"):
            ex.map(boom, range(4))
        assert ex.recoveries == []

    def test_wall_clock_guard_validated(self):
        with pytest.raises(ValueError, match="wall_clock_guard_s"):
            ProcessExecutor(2, wall_clock_guard_s=0.0)

    def test_fault_plan_verdict_stream_is_deterministic(self):
        from repro.serving.faults import FaultPlan, FaultSpec

        spec = FaultSpec(worker_kill_rate=0.3, worker_hang_rate=0.3)
        a = FaultPlan(spec, seed=5)
        b = FaultPlan(spec, seed=5)
        stream = [a.worker_verdict(i) for i in range(64)]
        assert stream == [b.worker_verdict(i) for i in range(64)]
        assert "worker-kill" in stream and "worker-hang" in stream
        assert None in stream
        # a different seed draws a different fate stream
        c = FaultPlan(spec, seed=6)
        assert stream != [c.worker_verdict(i) for i in range(64)]
