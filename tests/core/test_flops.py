"""Table II FLOP formulas — including the key cross-check against the
FLOPs the simulator meters when actually running the pipelines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BASELINE, FUSED_MHA, RM_PADDING, BertConfig
from repro.core.estimator import estimate_model
from repro.core.flops import (
    baseline_flops,
    exact_variable_length_flops,
    format_table2,
    fused_mha_flops,
    table2,
    zero_padding_flops,
)
from repro.gpusim import ExecutionContext, ProfileReport

CFG = BertConfig(num_layers=1)


class TestFormulas:
    def test_baseline_formulas(self):
        m, k, bs = 4096, 768, 16
        flops = baseline_flops(m, k, bs)
        assert flops.gemm0 == pytest.approx(6 * m * k**2)
        assert flops.mha == pytest.approx(4 * m**2 * k / bs)
        assert flops.gemm1 == pytest.approx(2 * m * k**2)
        assert flops.gemm2 == pytest.approx(8 * m * k**2)
        assert flops.gemm3 == pytest.approx(8 * m * k**2)

    def test_zero_padding_scales_all_but_mha(self):
        m, k, bs, alpha = 4096, 768, 16, 0.6
        base = baseline_flops(m, k, bs)
        packed = zero_padding_flops(m, k, bs, alpha)
        assert packed.gemm0 == pytest.approx(alpha * base.gemm0)
        assert packed.gemm3 == pytest.approx(alpha * base.gemm3)
        assert packed.mha == pytest.approx(base.mha)

    def test_fused_mha_scales_quadratically(self):
        m, k, bs, alpha = 4096, 768, 16, 0.6
        base = baseline_flops(m, k, bs)
        fused = fused_mha_flops(m, k, bs, alpha)
        assert fused.mha == pytest.approx(alpha**2 * base.mha)

    def test_alpha_bounds(self):
        with pytest.raises(ValueError, match="alpha"):
            zero_padding_flops(100, 8, 2, 0.0)
        with pytest.raises(ValueError, match="alpha"):
            zero_padding_flops(100, 8, 2, 1.2)

    def test_alpha_one_is_baseline(self):
        m, k, bs = 512, 64, 4
        base = baseline_flops(m, k, bs)
        packed = fused_mha_flops(m, k, bs, 1.0)
        assert packed.total == pytest.approx(base.total)

    @given(alpha=st.floats(0.1, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_ordering_property(self, alpha):
        m, k, bs = 2048, 768, 16
        base = baseline_flops(m, k, bs).total
        packed = zero_padding_flops(m, k, bs, alpha).total
        fused = fused_mha_flops(m, k, bs, alpha).total
        assert fused <= packed <= base

    def test_ffn_scale_respected(self):
        cfg = BertConfig(ffn_scale=2)
        flops = baseline_flops(100, cfg.hidden_size, 2, cfg)
        assert flops.gemm2 == pytest.approx(4 * 100 * cfg.hidden_size**2)


class TestExactCounts:
    def test_uniform_lengths_match_alpha_formula(self):
        """When every sequence has exactly alpha*max tokens, the α-formula
        and the exact count agree (including the quadratic MHA term)."""
        cfg = CFG
        batch, max_len, alpha = 8, 100, 0.5
        lens = [int(alpha * max_len)] * batch
        exact = exact_variable_length_flops(lens, cfg)
        formula = fused_mha_flops(
            batch * max_len, cfg.hidden_size, batch, alpha, cfg
        )
        assert exact.gemm0 == pytest.approx(formula.gemm0)
        assert exact.mha == pytest.approx(formula.mha)
        assert exact.total == pytest.approx(formula.total)

    def test_variable_lengths_mha_exceeds_formula(self):
        """sum(len^2) > (sum(len))^2 / n for non-constant lengths, so the
        α-formula underestimates MHA for real variable batches."""
        cfg = CFG
        lens = [10, 90]  # avg 50
        exact = exact_variable_length_flops(lens, cfg)
        formula = fused_mha_flops(200, cfg.hidden_size, 2, 0.5, cfg)
        assert exact.mha > formula.mha
        assert exact.gemm0 == pytest.approx(formula.gemm0)


class TestSimulatorAgreement:
    """The central honesty check: Table II's analytic numbers must equal
    what the execution contexts actually meter for the GEMM categories."""

    @pytest.fixture()
    def workload(self):
        rng = np.random.default_rng(0)
        lens = rng.integers(20, 65, size=6)
        lens[0] = 64
        return lens, 64

    def metered(self, opt, lens, max_len):
        ctx = ExecutionContext()
        estimate_model(ctx, CFG, opt, lens, max_len)
        report = ProfileReport.from_context(ctx)
        return {
            cat: report.categories[cat].flops
            for cat in ("gemm0", "gemm1", "gemm2", "gemm3")
        }

    def test_baseline_gemms_metered(self, workload):
        lens, max_len = workload
        m = len(lens) * max_len
        k = CFG.hidden_size
        expected = baseline_flops(m, k, len(lens), CFG)
        metered = self.metered(BASELINE, lens, max_len)
        assert metered["gemm0"] == pytest.approx(expected.gemm0)
        assert metered["gemm1"] == pytest.approx(expected.gemm1)
        assert metered["gemm2"] == pytest.approx(expected.gemm2)
        assert metered["gemm3"] == pytest.approx(expected.gemm3)

    def test_packed_gemms_metered_exactly(self, workload):
        lens, max_len = workload
        exact = exact_variable_length_flops(lens, CFG)
        for opt in (RM_PADDING, FUSED_MHA):
            metered = self.metered(opt, lens, max_len)
            assert metered["gemm0"] == pytest.approx(exact.gemm0)
            assert metered["gemm1"] == pytest.approx(exact.gemm1)
            assert metered["gemm2"] == pytest.approx(exact.gemm2)
            assert metered["gemm3"] == pytest.approx(exact.gemm3)

    def test_fused_mha_attention_flops_shrink(self, workload):
        """The attention category's GEMM work drops from padded to valid
        quadratic when fused MHA is enabled."""
        lens, max_len = workload
        ctx = ExecutionContext()
        estimate_model(ctx, CFG, RM_PADDING, lens, max_len)
        padded_attn = ProfileReport.from_context(ctx).categories[
            "attention"
        ].flops

        ctx = ExecutionContext()
        estimate_model(ctx, CFG, FUSED_MHA, lens, max_len)
        fused_attn = ProfileReport.from_context(ctx).categories[
            "attention"
        ].flops
        assert fused_attn < padded_attn


class TestRendering:
    def test_table_renders_all_modules(self):
        text = format_table2(table2(16, 1024, 0.6))
        for module in ("GEMM0", "MHA", "GEMM1", "GEMM2", "GEMM3", "total"):
            assert module in text
