"""The plain-NumPy BERT oracle."""

import math

import numpy as np
import pytest

from repro.core.reference import (
    reference_attention,
    reference_encoder,
    reference_encoder_layer,
    reference_mha,
)
from repro.kernels.softmax import softmax_reference


class TestAttention:
    def test_manual_computation(self, rng):
        q = rng.normal(size=(1, 1, 4, 8))
        k = rng.normal(size=(1, 1, 4, 8))
        v = rng.normal(size=(1, 1, 4, 8))
        out = reference_attention(q, k, v)
        scores = q[0, 0] @ k[0, 0].T / math.sqrt(8)
        expected = softmax_reference(scores) @ v[0, 0]
        np.testing.assert_allclose(out[0, 0], expected, rtol=1e-12)

    def test_mask_removes_padded_keys(self, rng):
        q = rng.normal(size=(1, 2, 4, 8))
        k = rng.normal(size=(1, 2, 4, 8))
        v = rng.normal(size=(1, 2, 4, 8))
        mask = np.array([[1, 1, 0, 0]])
        masked = reference_attention(q, k, v, mask)
        # identical to attention computed on the valid prefix only
        truncated = reference_attention(
            q[:, :, :2], k[:, :, :2], v[:, :, :2]
        )
        np.testing.assert_allclose(
            masked[:, :, :2], truncated, rtol=1e-4, atol=1e-6
        )

    def test_uniform_attention_averages_values(self):
        q = np.zeros((1, 1, 3, 4))
        k = np.zeros((1, 1, 3, 4))
        v = np.arange(12, dtype=np.float64).reshape(1, 1, 3, 4)
        out = reference_attention(q, k, v)
        np.testing.assert_allclose(out[0, 0, 0], v[0, 0].mean(axis=0))


class TestEncoder:
    def test_shapes_preserved(self, small_config, small_weights, small_batch):
        out = reference_encoder(
            small_batch.x, small_weights, small_config, small_batch.mask
        )
        assert out.shape == small_batch.x.shape

    def test_stacking_composes_layers(
        self, small_config, small_weights, small_batch
    ):
        out = small_batch.x
        for layer in small_weights.layers:
            out = reference_encoder_layer(
                out, layer, small_config, small_batch.mask
            )
        full = reference_encoder(
            small_batch.x, small_weights, small_config, small_batch.mask
        )
        np.testing.assert_allclose(full, out, rtol=1e-10)

    def test_valid_tokens_independent_of_padding_content(
        self, small_config, small_weights, small_batch, rng
    ):
        """Garbage in padded positions must not leak into valid outputs —
        the correctness property that makes packing legal."""
        clean = reference_encoder(
            small_batch.x, small_weights, small_config, small_batch.mask
        )
        dirty_x = small_batch.x.copy()
        pad = small_batch.mask == 0
        dirty_x[pad] = rng.normal(size=(pad.sum(), small_batch.hidden)) * 50
        dirty = reference_encoder(
            dirty_x, small_weights, small_config, small_batch.mask
        )
        valid = small_batch.mask.astype(bool)
        np.testing.assert_allclose(
            clean[valid], dirty[valid], rtol=2e-2, atol=2e-4
        )

    def test_mha_shape(self, small_config, small_weights, small_batch):
        out = reference_mha(
            small_batch.x,
            small_weights.layers[0],
            small_config,
            small_batch.mask,
        )
        assert out.shape == small_batch.x.shape

    def test_bad_mask_shape(self, small_config, small_weights, small_batch):
        with pytest.raises(ValueError, match="mask"):
            reference_encoder(
                small_batch.x,
                small_weights,
                small_config,
                small_batch.mask[:, :-1],
            )

    def test_bad_input_rank(self, small_config, small_weights, small_batch):
        with pytest.raises(ValueError, match=r"\[B, S, H\]"):
            reference_encoder(
                small_batch.x[0],
                small_weights,
                small_config,
                small_batch.mask,
            )
