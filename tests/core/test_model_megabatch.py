"""Cross-request megabatch forward: bitwise oracle, isolation, graphs.

The continuous-batching tentpole rides on ``forward_packed``: many
requests merged into one tile buffer must compute exactly the bits each
request would get alone, replay one launch graph per tile regardless of
composition, and never alias arena scratch across parallel buckets.
"""

import numpy as np
import pytest

from repro.core.config import FUSED_MHA, BertConfig
from repro.core.engine import LOOPED, VECTORIZED, use_engine
from repro.core.memory_planner import LiveArena
from repro.core.model import BertEncoderModel
from repro.core.padding import (
    merge_request_lengths,
    pack_segments,
    scatter_segments,
)
from repro.core.parallel import use_workers
from repro.gpusim import ExecutionContext
from repro.gpusim.graph import GraphCache

MAX_SEQ = 16
TILE = 64


@pytest.fixture()
def model(small_config, small_weights):
    return BertEncoderModel(small_config, FUSED_MHA, weights=small_weights)


def make_megabatch(small_config, rng, lens):
    mega = merge_request_lengths(
        np.asarray(lens, dtype=np.int64), MAX_SEQ, TILE
    )
    segments = [
        rng.normal(size=(length, small_config.hidden_size))
        for length in lens
    ]
    return segments, mega, pack_segments(segments, mega)


def looped_oracle(model, segment):
    """What this request computes when served alone (padded, mask=1)."""
    x = segment[np.newaxis]
    mask = np.ones((1, segment.shape[0]), dtype=np.int64)
    return model.forward(x, mask)[0]


class TestBitwiseOracle:
    @pytest.mark.parametrize("engine", [LOOPED, VECTORIZED])
    def test_scatter_back_matches_looped_single_request(
        self, model, small_config, rng, engine
    ):
        segments, mega, x_tile = make_megabatch(
            small_config, rng, [5, 12, 3, 8]
        )
        with use_engine(engine):
            out_tile = model.forward_packed(x_tile, mega)
            outs = scatter_segments(out_tile, mega)
            for segment, out in zip(segments, outs):
                expected = looped_oracle(model, segment)
                np.testing.assert_array_equal(out, expected)

    def test_quantization_tail_zeroed(self, model, small_config, rng):
        _, mega, x_tile = make_megabatch(small_config, rng, [5, 12, 3])
        # garbage in the tail must not leak into (or survive in) the output
        x_tile[mega.total_tokens :] = 123.0
        out = model.forward_packed(x_tile, mega)
        assert not out[mega.total_tokens :].any()

    def test_no_cross_request_leakage(self, model, small_config, rng):
        # perturbing one request must not change any *other* request's
        # bits — attention is windowed to per-request segments
        lens = [5, 12, 3, 8]
        segments, mega, x_tile = make_megabatch(small_config, rng, lens)
        baseline = scatter_segments(
            model.forward_packed(x_tile, mega).copy(), mega
        )
        perturbed = [s.copy() for s in segments]
        perturbed[1] = perturbed[1] + 10.0
        out = scatter_segments(
            model.forward_packed(pack_segments(perturbed, mega), mega), mega
        )
        for i in (0, 2, 3):
            np.testing.assert_array_equal(out[i], baseline[i])
        assert not np.array_equal(out[1], baseline[1])


class TestTileGraphReuse:
    def test_one_capture_then_replays_across_compositions(
        self, model, small_config, rng
    ):
        cache = GraphCache()
        model.graph_cache = cache
        ctx = ExecutionContext()
        for lens in ([5, 12, 3, 8], [16, 16, 16, 16], [1, 1], [30]):
            lens = [min(length, MAX_SEQ) for length in lens]
            _, mega, x_tile = make_megabatch(small_config, rng, lens)
            model.forward_packed(x_tile, mega, ctx=ctx)
        counts = cache.kind_counts()["tile"]
        assert counts == {"captures": 1, "replays": 3}

    def test_validation(self, small_config, small_weights, rng):
        padded = BertEncoderModel(small_config, weights=small_weights)
        _, mega, x_tile = make_megabatch(small_config, rng, [5, 3])
        with pytest.raises(ValueError, match="remove_padding"):
            padded.forward_packed(x_tile, mega)
        packed = BertEncoderModel(
            small_config, FUSED_MHA, weights=small_weights
        )
        with pytest.raises(ValueError, match="tile buffer"):
            packed.forward_packed(x_tile[:-1], mega)


class TestArenaMegabatch:
    def test_workers_and_arena_match_serial_no_arena(
        self, small_config, small_weights, rng
    ):
        # satellite: parallel bucket workers over an arena-backed
        # megabatch must not alias scratch — outputs stay bit-identical
        # to the serial, allocation-per-op path
        plain = BertEncoderModel(small_config, FUSED_MHA, weights=small_weights)
        arena_model = BertEncoderModel(
            small_config,
            FUSED_MHA,
            weights=small_weights,
            arena=LiveArena(),
        )
        segments, mega, x_tile = make_megabatch(
            small_config, rng, [5, 12, 3, 8, 16, 2]
        )
        expected = plain.forward_packed(x_tile.copy(), mega)
        with use_workers(3):
            got = arena_model.forward_packed(x_tile, mega)
        np.testing.assert_array_equal(got, expected)

    def test_tile_reservation_prevents_overflow(
        self, small_config, small_weights, rng
    ):
        # the tile's canonical plan is an upper bound over every
        # composition, so no megabatch of this tile regrows the arena
        arena = LiveArena()
        model = BertEncoderModel(
            small_config, FUSED_MHA, weights=small_weights, arena=arena
        )
        for lens in ([5, 12, 3, 8], [16] * 4, [1, 2, 3], [16, 1, 16, 1]):
            _, mega, x_tile = make_megabatch(small_config, rng, lens)
            model.forward_packed(x_tile, mega)
        assert arena.overflow_allocs == 0
