"""The zero-padding algorithm: PackedSeqs and its construction paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.padding import (
    EmptySegmentError,
    PackedSeqs,
    TileOverflowError,
    merge_request_lengths,
    pack,
    pack_segments,
    packing_from_lengths,
    packing_from_mask,
    scatter_segments,
    unpack,
)
from repro.gpusim import ExecutionContext

lengths_strategy = st.lists(st.integers(1, 16), min_size=1, max_size=8)


def mask_from_lengths(lens, max_len):
    mask = np.zeros((len(lens), max_len), dtype=np.int64)
    for b, length in enumerate(lens):
        mask[b, :length] = 1
    return mask


class TestConstruction:
    def test_from_mask_matches_from_lengths(self):
        lens = [3, 5, 1]
        via_mask = packing_from_mask(mask_from_lengths(lens, 5))
        via_lens = packing_from_lengths(lens, 5)
        np.testing.assert_array_equal(via_mask.seq_lens, via_lens.seq_lens)
        np.testing.assert_array_equal(
            via_mask.gather_idx, via_lens.gather_idx
        )
        np.testing.assert_array_equal(
            via_mask.seq_offsets, via_lens.seq_offsets
        )

    def test_figure4_example(self):
        """The paper's Figure 4: sentences of 5, 2 and 4 words."""
        packing = packing_from_lengths([5, 2, 4], 5)
        assert packing.total_tokens == 11
        np.testing.assert_array_equal(packing.seq_offsets, [0, 5, 7, 11])
        # sentence 1's tokens sit at packed rows 5..6, from padded rows 5..6
        np.testing.assert_array_equal(packing.gather_idx[5:7], [5, 6])

    def test_interior_padding_rejected(self):
        mask = np.array([[1, 0, 1, 0]])
        with pytest.raises(ValueError, match="interior padding"):
            packing_from_mask(mask)

    def test_empty_sentence_rejected(self):
        with pytest.raises(ValueError, match="valid token"):
            packing_from_mask(np.array([[1, 1], [0, 0]]))

    def test_length_bounds(self):
        with pytest.raises(ValueError, match="lengths"):
            packing_from_lengths([5], max_seq_len=4)
        with pytest.raises(ValueError, match="lengths"):
            packing_from_lengths([0], max_seq_len=4)

    def test_mask_records_prefix_sum_kernel(self):
        ctx = ExecutionContext()
        packing_from_mask(mask_from_lengths([2, 3], 4), ctx=ctx)
        assert ctx.kernel_count() == 1
        assert ctx.records[0].launch.name == "mask_prefix_sum"


class TestProperties:
    @given(lens=lengths_strategy)
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, lens):
        max_len = max(lens)
        packing = packing_from_lengths(lens, max_len)
        assert packing.total_tokens == sum(lens)
        assert 0 < packing.fill_ratio <= 1.0
        # gather indices strictly increasing within each sentence
        for b in range(len(lens)):
            rows = packing.gather_idx[packing.rows_of(b)]
            assert (np.diff(rows) == 1).all()

    @given(lens=lengths_strategy)
    @settings(max_examples=50, deadline=None)
    def test_mask_roundtrip(self, lens):
        max_len = max(lens)
        packing = packing_from_lengths(lens, max_len)
        np.testing.assert_array_equal(
            packing.to_mask(), mask_from_lengths(lens, max_len)
        )

    @given(lens=lengths_strategy, hidden=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_pack_unpack_roundtrip(self, lens, hidden):
        rng = np.random.default_rng(sum(lens))
        max_len = max(lens)
        packing = packing_from_lengths(lens, max_len)
        x = rng.normal(size=(len(lens), max_len, hidden))
        x *= packing.to_mask()[:, :, None]

        packed = pack(x, packing)
        assert packed.shape == (packing.total_tokens, hidden)
        restored = unpack(packed, packing)
        np.testing.assert_array_equal(
            restored.reshape(x.shape), x
        )

    def test_fill_ratio_full_batch(self):
        packing = packing_from_lengths([4, 4], 4)
        assert packing.fill_ratio == 1.0


class TestPackUnpackValidation:
    def test_pack_layout_mismatch(self, rng):
        packing = packing_from_lengths([2, 3], 4)
        with pytest.raises(ValueError, match="layout"):
            pack(rng.normal(size=(3, 4, 8)), packing)

    def test_pack_2d_rows_mismatch(self, rng):
        packing = packing_from_lengths([2, 3], 4)
        with pytest.raises(ValueError, match="rows"):
            pack(rng.normal(size=(7, 8)), packing)

    def test_unpack_rows_mismatch(self, rng):
        packing = packing_from_lengths([2, 3], 4)
        with pytest.raises(ValueError, match="expected"):
            unpack(rng.normal(size=(4, 8)), packing)

    def test_packedseqs_validation(self):
        with pytest.raises(ValueError, match="gather_idx"):
            PackedSeqs(
                batch=1,
                max_seq_len=4,
                seq_lens=np.array([2]),
                seq_offsets=np.array([0, 2]),
                gather_idx=np.array([0]),
            )


class TestCrossRequestPacking:
    """The megabatch merge path: merge_request_lengths / pack_segments /
    scatter_segments and the edge cases continuous batching exposes."""

    def test_merge_layout(self):
        mega = merge_request_lengths(np.array([3, 5, 2]), 8, 16)
        assert mega.tile == 16
        assert mega.total_tokens == 10
        assert mega.pad_tokens == 6
        assert mega.num_segments == 3
        np.testing.assert_array_equal(
            mega.segment_offsets, [0, 3, 8, 10]
        )

    def test_pack_scatter_roundtrip(self, rng):
        lens = np.array([3, 5, 2])
        mega = merge_request_lengths(lens, 8, 16)
        segs = [rng.normal(size=(int(l), 4)) for l in lens]
        tile = pack_segments(segs, mega)
        assert tile.shape == (16, 4)
        # quantization tail zero-padded inside the packed buffer only
        assert not tile[mega.total_tokens :].any()
        for seg, back in zip(segs, scatter_segments(tile, mega)):
            np.testing.assert_array_equal(seg, back)

    def test_scatter_returns_views(self, rng):
        mega = merge_request_lengths(np.array([2, 2]), 4, 8)
        tile = pack_segments(
            [rng.normal(size=(2, 4)) for _ in range(2)], mega
        )
        for view in scatter_segments(tile, mega):
            assert np.shares_memory(view, tile)

    def test_zero_valid_token_request_typed_error(self):
        with pytest.raises(EmptySegmentError, match="request 1"):
            merge_request_lengths(np.array([3, 0, 2]), 8, 16)

    def test_request_larger_than_tile_typed_error(self):
        with pytest.raises(TileOverflowError, match="16-token tile"):
            merge_request_lengths(np.array([9, 9]), 16, 16)
        # the typed errors are ValueErrors, so CLI error handling applies
        assert issubclass(TileOverflowError, ValueError)
        assert issubclass(EmptySegmentError, ValueError)

    def test_exact_tile_no_quantization_padding(self):
        # all requests the same length, tile exactly full
        mega = merge_request_lengths(np.array([4, 4, 4, 4]), 4, 16)
        assert mega.pad_tokens == 0
        assert mega.total_tokens == mega.tile

    def test_pack_segments_validates_segments(self, rng):
        mega = merge_request_lengths(np.array([2, 3]), 4, 8)
        with pytest.raises(ValueError, match="segment tensors"):
            pack_segments([rng.normal(size=(2, 4))], mega)
        with pytest.raises(ValueError, match="rows"):
            pack_segments(
                [rng.normal(size=(2, 4)), rng.normal(size=(4, 4))], mega
            )

    def test_pack_segments_out_reuse(self, rng):
        mega = merge_request_lengths(np.array([2, 3]), 4, 8)
        segs = [rng.normal(size=(2, 4)), rng.normal(size=(3, 4))]
        out = np.full((8, 4), 7.0)
        result = pack_segments(segs, mega, out=out)
        assert result is out
        assert not out[5:].any()
