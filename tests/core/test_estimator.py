"""Estimator-vs-numeric lock-step: the guarantee behind fast sweeps.

For every optimisation preset, the shape-only estimator must record
*exactly* the kernel sequence the numeric model records — same names,
grids, FLOPs, bytes, and therefore identical modelled times.
"""

import numpy as np
import pytest

from repro.core.config import STEPWISE_PRESETS, BertConfig
from repro.core.estimator import (
    estimate_encoder_layer,
    estimate_model,
    estimate_standard_mha,
)
from repro.core.model import BertEncoderModel
from repro.gpusim import ExecutionContext


def signature(ctx):
    return [
        (
            r.launch.name,
            r.launch.grid,
            round(r.launch.flops, 3),
            round(r.launch.dram_bytes, 3),
            round(r.launch.hot_bytes, 3),
        )
        for r in ctx.records
    ]


class TestLockStep:
    @pytest.mark.parametrize(
        "opt", STEPWISE_PRESETS, ids=lambda o: o.label
    )
    def test_identical_launch_sequences(
        self, opt, small_config, small_weights, small_batch
    ):
        model = BertEncoderModel(small_config, opt, weights=small_weights)
        numeric = ExecutionContext()
        model.forward(small_batch.x, small_batch.mask, ctx=numeric)

        estimated = ExecutionContext()
        estimate_model(
            estimated,
            small_config,
            opt,
            small_batch.seq_lens,
            small_batch.max_seq_len,
        )
        assert signature(numeric) == signature(estimated)

    @pytest.mark.parametrize(
        "opt", STEPWISE_PRESETS, ids=lambda o: o.label
    )
    def test_identical_times(
        self, opt, small_config, small_weights, small_batch
    ):
        model = BertEncoderModel(small_config, opt, weights=small_weights)
        numeric = ExecutionContext()
        model.forward(small_batch.x, small_batch.mask, ctx=numeric)

        estimated = ExecutionContext()
        estimate_model(
            estimated,
            small_config,
            opt,
            small_batch.seq_lens,
            small_batch.max_seq_len,
        )
        assert estimated.elapsed_us() == pytest.approx(numeric.elapsed_us())

    def test_long_sequences_hit_grouped_kernels(self, small_config):
        """Past the short-kernel limit the estimator must dispatch the
        grouped-GEMM FMHA, like the numeric path does."""
        from repro.core.config import FUSED_MHA

        lens = np.array([500, 420, 510])
        ctx = ExecutionContext()
        estimate_model(ctx, small_config, FUSED_MHA, lens, 512)
        names = {r.launch.name for r in ctx.records}
        assert "fmha_grouped_qk" in names
        assert "fused_mha_short" not in names

    def test_short_sequences_hit_short_kernel(self, small_config):
        from repro.core.config import FUSED_MHA

        lens = np.array([40, 30, 48])
        ctx = ExecutionContext()
        estimate_model(ctx, small_config, FUSED_MHA, lens, 48)
        names = {r.launch.name for r in ctx.records}
        assert "fused_mha_short" in names
        assert "fmha_grouped_qk" not in names


class TestOverrides:
    def test_mha_override_standard(self, small_config):
        lens = np.array([30, 40])
        ctx = ExecutionContext()
        estimate_encoder_layer(
            ctx,
            small_config,
            STEPWISE_PRESETS[0],
            lens,
            48,
            mha="standard",
        )
        assert any(r.launch.name == "pt_bmm_qk" for r in ctx.records)

    def test_unknown_override_rejected(self, small_config):
        with pytest.raises(ValueError, match="mha override"):
            estimate_encoder_layer(
                ctx=ExecutionContext(),
                config=small_config,
                opt=STEPWISE_PRESETS[0],
                seq_lens=np.array([30]),
                max_seq_len=48,
                mha="nope",
            )

    def test_standard_mha_matches_attention_module(self, small_config):
        """estimate_standard_mha delegates to the attention module's own
        launch builder — spot-check the chain length."""
        ctx = ExecutionContext()
        estimate_standard_mha(ctx, 4, 48, small_config)
        assert ctx.kernel_count() == 10
