"""Configuration objects and the Figure-13 preset ladder."""

import pytest

from repro.core.config import (
    BASELINE,
    FAST_GELU,
    FUSED_MHA,
    GELU_FUSION,
    LAYERNORM_FUSION,
    RM_PADDING,
    STANDARD_BERT,
    STEPWISE_PRESETS,
    BertConfig,
    OptimizationConfig,
)


class TestBertConfig:
    def test_standard_shape(self):
        assert STANDARD_BERT.num_heads == 12
        assert STANDARD_BERT.head_size == 64
        assert STANDARD_BERT.hidden_size == 768
        assert STANDARD_BERT.ffn_size == 3072
        assert STANDARD_BERT.num_layers == 12

    def test_single_layer_keeps_shape(self):
        single = STANDARD_BERT.single_layer()
        assert single.num_layers == 1
        assert single.hidden_size == STANDARD_BERT.hidden_size

    @pytest.mark.parametrize(
        "field", ["num_heads", "head_size", "num_layers", "ffn_scale"]
    )
    def test_positive_fields(self, field):
        with pytest.raises(ValueError, match=field):
            BertConfig(**{field: 0})


class TestOptimizationPresets:
    def test_ladder_is_cumulative(self):
        """Each Figure 13 variant includes all previous optimisations."""
        flags = [
            (p.fuse_layernorm, p.fuse_gelu, p.remove_padding, p.fused_mha)
            for p in STEPWISE_PRESETS
        ]
        for earlier, later in zip(flags, flags[1:]):
            for a, b in zip(earlier, later):
                assert b or not a  # a flag never turns back off

    def test_ladder_order(self):
        assert STEPWISE_PRESETS == (
            BASELINE,
            LAYERNORM_FUSION,
            GELU_FUSION,
            RM_PADDING,
            FUSED_MHA,
        )

    def test_labels_unique(self):
        labels = [p.label for p in STEPWISE_PRESETS]
        assert len(set(labels)) == len(labels)

    def test_fused_mha_requires_packing(self):
        with pytest.raises(ValueError, match="remove_padding"):
            OptimizationConfig(fused_mha=True, remove_padding=False)

    def test_short_cutover_positive(self):
        with pytest.raises(ValueError, match="fused_mha_short_max_seq"):
            OptimizationConfig(fused_mha_short_max_seq=0)

    def test_baseline_has_everything_off(self):
        assert not BASELINE.fuse_layernorm
        assert not BASELINE.fuse_gelu
        assert not BASELINE.remove_padding
        assert not BASELINE.fused_mha

    def test_fast_gelu_rides_on_the_top_rung(self):
        # the fast-gelu preset is FUSED_MHA plus the tanh formula: a
        # numeric-plane opt-in, deliberately outside the bitwise ladder
        assert FAST_GELU not in STEPWISE_PRESETS
        assert FAST_GELU.gelu_variant == "tanh"
        assert FAST_GELU.label == "fast-gelu"
        for field in (
            "fuse_layernorm", "fuse_gelu", "remove_padding", "fused_mha"
        ):
            assert getattr(FAST_GELU, field) == getattr(FUSED_MHA, field)

    def test_default_variant_is_exact(self):
        assert FUSED_MHA.gelu_variant == "exact"
        assert OptimizationConfig().gelu_variant == "exact"

    def test_unknown_gelu_variant_rejected(self):
        with pytest.raises(ValueError, match="gelu_variant"):
            OptimizationConfig(gelu_variant="relu")
