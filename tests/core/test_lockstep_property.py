"""Property-based lock-step: estimator == numeric model on random shapes.

The fixed-shape lock-step tests in ``test_estimator.py`` pin one
configuration; here hypothesis draws random small architectures and
length vectors and requires byte-for-byte identical launch sequences for
every optimisation preset and device.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import STEPWISE_PRESETS, BertConfig
from repro.core.estimator import estimate_model
from repro.core.model import BertEncoderModel
from repro.core.weights import init_model_weights
from repro.gpusim import A10_SPEC, A100_SPEC, V100_SPEC, ExecutionContext
from repro.workloads.generator import make_batch

configs = st.builds(
    BertConfig,
    num_heads=st.sampled_from([2, 4]),
    head_size=st.sampled_from([8, 16]),
    num_layers=st.integers(1, 2),
)
length_vectors = st.lists(st.integers(1, 40), min_size=1, max_size=5)


def signature(ctx):
    return [
        (
            r.launch.name,
            r.launch.grid,
            round(r.launch.flops, 2),
            round(r.launch.dram_bytes, 2),
            round(r.launch.hot_bytes, 2),
            round(r.launch.extra_overhead_us, 4),
        )
        for r in ctx.records
    ]


class TestLockStepProperty:
    @given(config=configs, lens=length_vectors, preset_idx=st.integers(0, 4))
    @settings(max_examples=25, deadline=None)
    def test_random_shapes(self, config, lens, preset_idx):
        preset = STEPWISE_PRESETS[preset_idx]
        max_seq = max(lens)
        weights = init_model_weights(config, seed=0)
        model = BertEncoderModel(config, preset, weights=weights)

        rng = np.random.default_rng(1)
        x = rng.normal(
            size=(len(lens), max_seq, config.hidden_size)
        ).astype(np.float32)
        mask = np.zeros((len(lens), max_seq), dtype=np.int64)
        for b, length in enumerate(lens):
            mask[b, :length] = 1
        x *= mask[:, :, None]

        numeric = ExecutionContext()
        model.forward(x, mask, ctx=numeric)
        estimated = ExecutionContext()
        estimate_model(
            estimated, config, preset, np.asarray(lens), max_seq
        )
        assert signature(numeric) == signature(estimated)

    @pytest.mark.parametrize(
        "device", (A100_SPEC, V100_SPEC, A10_SPEC), ids=lambda d: d.name
    )
    def test_lockstep_holds_per_device(self, device):
        """Device changes dispatch decisions (shared-memory limits) and
        grouped-GEMM schedules; the estimator must track all of it."""
        config = BertConfig(num_heads=4, head_size=16, num_layers=1)
        weights = init_model_weights(config, seed=3)
        batch = make_batch(4, 64, config.hidden_size, alpha=0.6, seed=4)
        for preset in STEPWISE_PRESETS:
            model = BertEncoderModel(config, preset, weights=weights)
            numeric = ExecutionContext(device)
            model.forward(batch.x, batch.mask, ctx=numeric)
            estimated = ExecutionContext(device)
            estimate_model(
                estimated,
                config,
                preset,
                batch.seq_lens,
                batch.max_seq_len,
            )
            assert signature(numeric) == signature(estimated), preset.label
            assert estimated.elapsed_us() == pytest.approx(
                numeric.elapsed_us()
            )
