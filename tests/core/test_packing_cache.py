"""PackingCache behavior and the loop-free metadata builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import LOOPED, VECTORIZED, use_engine
from repro.core.padding import (
    PackingCache,
    default_packing_cache,
    packing_from_lengths,
    packing_from_mask,
)
from repro.gpusim.stream import NullContext


def _mask(lengths, max_seq_len):
    lens = np.asarray(lengths, dtype=np.int64)
    return (
        np.arange(max_seq_len)[None, :] < lens[:, None]
    ).astype(np.int64)


def test_cache_hit_returns_same_instance():
    cache = PackingCache()
    a = packing_from_lengths([3, 7, 2], 8, cache=cache)
    b = packing_from_lengths([3, 7, 2], 8, cache=cache)
    assert a is b
    assert cache.hits == 1 and cache.misses == 1


def test_cache_distinguishes_max_seq_len():
    cache = PackingCache()
    a = packing_from_lengths([3, 7, 2], 8, cache=cache)
    b = packing_from_lengths([3, 7, 2], 16, cache=cache)
    assert a is not b
    assert cache.misses == 2


def test_cache_eviction_at_capacity():
    cache = PackingCache(capacity=2)
    packing_from_lengths([1], 4, cache=cache)
    packing_from_lengths([2], 4, cache=cache)
    packing_from_lengths([3], 4, cache=cache)  # evicts [1]
    assert len(cache) == 2
    packing_from_lengths([1], 4, cache=cache)  # rebuilt, not a hit
    assert cache.hits == 0 and cache.misses == 4


def test_cache_lru_order():
    cache = PackingCache(capacity=2)
    packing_from_lengths([1], 4, cache=cache)
    packing_from_lengths([2], 4, cache=cache)
    packing_from_lengths([1], 4, cache=cache)  # refresh [1]
    packing_from_lengths([3], 4, cache=cache)  # evicts [2], not [1]
    packing_from_lengths([1], 4, cache=cache)
    assert cache.hits == 2


def test_cached_arrays_are_read_only():
    cache = PackingCache()
    packing = packing_from_lengths([3, 5], 8, cache=cache)
    for arr in (packing.seq_lens, packing.seq_offsets, packing.gather_idx):
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[0] = 99


def test_cache_copies_caller_lengths():
    cache = PackingCache()
    lens = np.array([3, 5], dtype=np.int64)
    packing = packing_from_lengths(lens, 8, cache=cache)
    lens[0] = 1  # caller mutates its array after the call
    assert packing.seq_lens[0] == 3
    hit = packing_from_lengths([3, 5], 8, cache=cache)
    assert hit is packing


def test_cache_none_bypasses():
    a = packing_from_lengths([3, 7], 8, cache=None)
    b = packing_from_lengths([3, 7], 8, cache=None)
    assert a is not b
    assert a.seq_lens.flags.writeable


def test_default_cache_is_used():
    default = default_packing_cache()
    hits = default.hits
    packing_from_lengths([6, 2, 6], 8)
    packing_from_lengths([6, 2, 6], 8)
    assert default.hits > hits


def test_clear_resets_stats():
    cache = PackingCache()
    packing_from_lengths([4], 8, cache=cache)
    packing_from_lengths([4], 8, cache=cache)
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


def test_no_copy_for_int64_arrays():
    lens = np.array([3, 7, 2], dtype=np.int64)
    packing = packing_from_lengths(lens, 8, cache=None)
    assert packing.seq_lens is lens  # used as-is, no intermediate copy


def test_loop_free_matches_naive_construction():
    lengths = [5, 1, 8, 3, 6]
    packing = packing_from_lengths(lengths, 8, cache=None)
    offsets = [0]
    gather = []
    for b, length in enumerate(lengths):
        offsets.append(offsets[-1] + length)
        gather.extend(b * 8 + s for s in range(length))
    np.testing.assert_array_equal(packing.seq_offsets, offsets)
    np.testing.assert_array_equal(packing.gather_idx, gather)


def test_to_mask_round_trip():
    lengths = [5, 1, 8, 3]
    mask = _mask(lengths, 8)
    packing = packing_from_mask(mask, ctx=NullContext(), cache=None)
    np.testing.assert_array_equal(packing.to_mask(), mask)


@pytest.mark.parametrize("engine", [LOOPED, VECTORIZED])
def test_interior_padding_rejected(engine):
    mask = _mask([5, 4, 6], 8)
    mask[1, 1] = 0  # hole inside sentence 1
    with use_engine(engine):
        with pytest.raises(ValueError, match="interior padding"):
            packing_from_mask(mask, ctx=NullContext(), cache=None)


@pytest.mark.parametrize("engine", [LOOPED, VECTORIZED])
def test_mask_packing_engine_equivalence(engine):
    """Both engines build identical metadata from the same mask."""
    mask = _mask([5, 1, 8, 3, 6], 8)
    with use_engine(engine):
        packing = packing_from_mask(mask, ctx=NullContext(), cache=None)
    np.testing.assert_array_equal(packing.seq_lens, [5, 1, 8, 3, 6])
    np.testing.assert_array_equal(
        packing.seq_offsets, [0, 5, 6, 14, 17, 23]
    )
    assert packing.gather_idx.shape == (23,)


def test_packing_from_mask_uses_cache():
    cache = PackingCache()
    mask = _mask([4, 2], 8)
    a = packing_from_mask(mask, ctx=NullContext(), cache=cache)
    b = packing_from_mask(mask, ctx=NullContext(), cache=cache)
    assert a is b
    assert cache.hits == 1


def test_cache_rejects_bad_capacity():
    with pytest.raises(ValueError):
        PackingCache(capacity=0)


def test_lru_eviction_counts_and_drops_oldest():
    cache = PackingCache(capacity=2)
    packing_from_lengths([1, 2], 8, cache=cache)
    packing_from_lengths([3, 4], 8, cache=cache)
    packing_from_lengths([1, 2], 8, cache=cache)  # refresh: [3, 4] is LRU
    packing_from_lengths([5, 6], 8, cache=cache)  # evicts [3, 4]
    assert cache.evictions == 1
    assert len(cache) == 2
    packing_from_lengths([3, 4], 8, cache=cache)  # rebuilt, not a hit
    assert cache.hits == 1 and cache.misses == 4


def test_clear_resets_eviction_counter():
    cache = PackingCache(capacity=1)
    packing_from_lengths([1, 2], 8, cache=cache)
    packing_from_lengths([3, 4], 8, cache=cache)
    assert cache.evictions == 1
    cache.clear()
    assert cache.evictions == 0 and len(cache) == 0
