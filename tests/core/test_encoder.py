"""Encoder pipeline variants: every preset must equal the oracle."""

import numpy as np
import pytest

from repro.core.config import (
    BASELINE,
    FUSED_MHA,
    GELU_FUSION,
    LAYERNORM_FUSION,
    RM_PADDING,
    STEPWISE_PRESETS,
)
from repro.core.encoder import encoder_layer_packed, encoder_layer_padded
from repro.core.padding import pack, unpack
from repro.core.reference import reference_encoder_layer
from repro.gpusim import ExecutionContext

PADDED_PRESETS = (BASELINE, LAYERNORM_FUSION, GELU_FUSION)
PACKED_PRESETS = (RM_PADDING, FUSED_MHA)


@pytest.fixture()
def oracle(small_config, small_weights, small_batch):
    return reference_encoder_layer(
        small_batch.x,
        small_weights.layers[0],
        small_config,
        small_batch.mask,
    )


class TestPaddedPipelines:
    @pytest.mark.parametrize("opt", PADDED_PRESETS, ids=lambda o: o.label)
    def test_matches_oracle_on_valid_tokens(
        self, opt, small_config, small_weights, small_batch, oracle
    ):
        flat = small_batch.x.reshape(-1, small_batch.hidden)
        out = encoder_layer_padded(
            flat, small_weights.layers[0], small_config, opt, small_batch.mask
        )
        out = out.reshape(small_batch.x.shape)
        valid = small_batch.mask.astype(bool)
        np.testing.assert_allclose(
            out[valid], oracle[valid], rtol=1e-4, atol=1e-5
        )

    def test_rejects_packed_preset(
        self, small_config, small_weights, small_batch
    ):
        flat = small_batch.x.reshape(-1, small_batch.hidden)
        with pytest.raises(ValueError, match="remove_padding"):
            encoder_layer_padded(
                flat,
                small_weights.layers[0],
                small_config,
                RM_PADDING,
                small_batch.mask,
            )

    def test_row_count_validated(
        self, small_config, small_weights, small_batch
    ):
        with pytest.raises(ValueError, match="rows"):
            encoder_layer_padded(
                np.zeros((7, small_batch.hidden), dtype=np.float32),
                small_weights.layers[0],
                small_config,
                BASELINE,
                small_batch.mask,
            )

    def test_fusion_reduces_kernel_count(
        self, small_config, small_weights, small_batch
    ):
        flat = small_batch.x.reshape(-1, small_batch.hidden)
        counts = {}
        for opt in (BASELINE, GELU_FUSION):
            ctx = ExecutionContext()
            encoder_layer_padded(
                flat,
                small_weights.layers[0],
                small_config,
                opt,
                small_batch.mask,
                ctx=ctx,
            )
            counts[opt.label] = ctx.kernel_count()
        assert counts["add bias & GELU fusion"] < counts["baseline"]


class TestPackedPipelines:
    @pytest.mark.parametrize("opt", PACKED_PRESETS, ids=lambda o: o.label)
    def test_matches_oracle_on_valid_tokens(
        self, opt, small_config, small_weights, small_batch, small_packing, oracle
    ):
        flat = small_batch.x.reshape(-1, small_batch.hidden)
        packed_in = pack(flat, small_packing)
        packed_out = encoder_layer_packed(
            packed_in,
            small_weights.layers[0],
            small_config,
            opt,
            small_packing,
        )
        out = unpack(packed_out, small_packing).reshape(small_batch.x.shape)
        valid = small_batch.mask.astype(bool)
        np.testing.assert_allclose(
            out[valid], oracle[valid], rtol=1e-4, atol=1e-5
        )

    def test_rejects_padded_preset(
        self, small_config, small_weights, small_packing, rng
    ):
        packed = rng.normal(
            size=(small_packing.total_tokens, small_config.hidden_size)
        )
        with pytest.raises(ValueError, match="remove_padding"):
            encoder_layer_packed(
                packed,
                small_weights.layers[0],
                small_config,
                BASELINE,
                small_packing,
            )

    def test_token_count_validated(
        self, small_config, small_weights, small_packing, rng
    ):
        packed = rng.normal(
            size=(small_packing.total_tokens + 1, small_config.hidden_size)
        )
        with pytest.raises(ValueError, match="rows"):
            encoder_layer_packed(
                packed,
                small_weights.layers[0],
                small_config,
                RM_PADDING,
                small_packing,
            )

    def test_fused_mha_uses_fewer_kernels_than_zeropad(
        self, small_config, small_weights, small_batch, small_packing
    ):
        flat = small_batch.x.reshape(-1, small_batch.hidden)
        packed_in = pack(flat, small_packing)
        counts = {}
        for opt in PACKED_PRESETS:
            ctx = ExecutionContext()
            encoder_layer_packed(
                packed_in,
                small_weights.layers[0],
                small_config,
                opt,
                small_packing,
                ctx=ctx,
            )
            counts[opt.label] = ctx.kernel_count()
        assert counts["fused MHA"] < counts["rm padding"]


class TestCrossPipelineEquivalence:
    def test_all_presets_agree(
        self, small_config, small_weights, small_batch, small_packing
    ):
        """All five Figure-13 variants compute the same function."""
        flat = small_batch.x.reshape(-1, small_batch.hidden)
        valid = small_batch.mask.astype(bool)
        outputs = []
        for opt in STEPWISE_PRESETS:
            if opt.remove_padding:
                packed = encoder_layer_packed(
                    pack(flat, small_packing),
                    small_weights.layers[0],
                    small_config,
                    opt,
                    small_packing,
                )
                out = unpack(packed, small_packing)
            else:
                out = encoder_layer_padded(
                    flat,
                    small_weights.layers[0],
                    small_config,
                    opt,
                    small_batch.mask,
                )
            outputs.append(out.reshape(small_batch.x.shape)[valid])
        for other in outputs[1:]:
            np.testing.assert_allclose(
                outputs[0], other, rtol=1e-4, atol=1e-5
            )
