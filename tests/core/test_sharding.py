"""Tests for tensor-parallel sharding on the cost plane."""

import numpy as np
import pytest

from repro.core.config import FUSED_MHA, BertConfig
from repro.core.estimator import (
    estimate_model,
    estimate_model_graphed,
    estimate_model_tiled,
)
from repro.core.sharding import UNSHARDED, ShardSpec
from repro.gpusim import A100_SPEC, ExecutionContext, make_cluster
from repro.gpusim.errors import LaunchConfigError
from repro.gpusim.graph import GraphCache

CONFIG = BertConfig(num_layers=2)
SEQ_LENS = np.asarray([64, 128, 48], dtype=np.int64)
MAX_SEQ_LEN = 128


def _stream(ctx):
    return [(r.launch, r.time_us) for r in ctx.records]


# ----------------------------------------------------------------------
# ShardSpec


def test_shard_spec_validation():
    with pytest.raises(ValueError):
        ShardSpec(tp=0)
    with pytest.raises(ValueError):
        ShardSpec(tp=2, rank=2)
    with pytest.raises(ValueError):
        ShardSpec(tp=2, rank=-1)


def test_unsharded_is_the_identity():
    assert not UNSHARDED.is_sharded
    assert UNSHARDED.shard_dim(12) == 12


def test_shard_dim_remainder_goes_to_low_ranks():
    # 12 heads over 8 ranks: ranks 0-3 hold 2, ranks 4-7 hold 1
    dims = [ShardSpec(tp=8, rank=r).shard_dim(12) for r in range(8)]
    assert dims == [2, 2, 2, 2, 1, 1, 1, 1]
    assert sum(dims) == 12
    # evenly divisible: everyone equal
    assert {ShardSpec(tp=4, rank=r).shard_dim(12) for r in range(4)} == {3}


# ----------------------------------------------------------------------
# estimator integration


def test_tp1_shard_emits_the_exact_unsharded_stream():
    plain = ExecutionContext(A100_SPEC)
    estimate_model(plain, CONFIG, FUSED_MHA, SEQ_LENS, MAX_SEQ_LEN)
    tp1 = ExecutionContext(A100_SPEC)
    estimate_model(
        tp1, CONFIG, FUSED_MHA, SEQ_LENS, MAX_SEQ_LEN, shard=ShardSpec()
    )
    assert _stream(plain) == _stream(tp1)


@pytest.mark.parametrize("tp", [2, 4, 8])
def test_sharded_estimate_prices_two_all_reduces_per_layer(tp):
    cluster = make_cluster(tp)
    ctx = ExecutionContext(A100_SPEC, cluster=cluster)
    estimate_model(
        ctx, CONFIG, FUSED_MHA, SEQ_LENS, MAX_SEQ_LEN,
        shard=ShardSpec(tp=tp, rank=0),
    )
    collectives = [r for r in ctx.records if r.launch.is_collective]
    assert len(collectives) == 2 * CONFIG.num_layers
    assert all(r.launch.comm_devices == tp for r in collectives)
    assert all(
        r.launch.name.startswith("allreduce") for r in collectives
    )


def test_sharded_estimate_without_cluster_is_a_config_error():
    ctx = ExecutionContext(A100_SPEC)  # no interconnect priced
    with pytest.raises(LaunchConfigError):
        estimate_model(
            ctx, CONFIG, FUSED_MHA, SEQ_LENS, MAX_SEQ_LEN,
            shard=ShardSpec(tp=2, rank=0),
        )


def test_rank_zero_is_the_critical_path():
    cluster = make_cluster(8)
    times = []
    for rank in range(8):
        ctx = ExecutionContext(A100_SPEC, cluster=cluster)
        estimate_model(
            ctx, CONFIG, FUSED_MHA, SEQ_LENS, MAX_SEQ_LEN,
            shard=ShardSpec(tp=8, rank=rank),
        )
        times.append(ctx.elapsed_us())
    assert max(times) == times[0]


def test_rank_with_zero_heads_rejected():
    # 16-way sharding of 12 heads leaves the top ranks empty
    cluster = make_cluster(16)
    ctx = ExecutionContext(A100_SPEC, cluster=cluster)
    with pytest.raises(LaunchConfigError):
        estimate_model(
            ctx, CONFIG, FUSED_MHA, SEQ_LENS, MAX_SEQ_LEN,
            shard=ShardSpec(tp=16, rank=15),
        )


def test_sharding_reduces_per_rank_compute_time():
    base = ExecutionContext(A100_SPEC)
    estimate_model(base, CONFIG, FUSED_MHA, SEQ_LENS, MAX_SEQ_LEN)
    cluster = make_cluster(4)
    ctx = ExecutionContext(A100_SPEC, cluster=cluster)
    estimate_model(
        ctx, CONFIG, FUSED_MHA, SEQ_LENS, MAX_SEQ_LEN,
        shard=ShardSpec(tp=4, rank=0),
    )
    compute_us = sum(
        r.time_us for r in ctx.records if not r.launch.is_collective
    )
    assert compute_us < base.elapsed_us()


# ----------------------------------------------------------------------
# graph-cache keying


def test_graph_keys_include_the_shard():
    cache = GraphCache()
    cluster = make_cluster(8)

    def run(shard):
        ctx = ExecutionContext(A100_SPEC, cluster=cluster)
        estimate_model_graphed(
            ctx, CONFIG, FUSED_MHA, SEQ_LENS, MAX_SEQ_LEN,
            shard=shard, cache=cache,
        )
        return ctx

    # 12 heads over 8 ranks is uneven: rank 0 holds 2, rank 7 holds 1
    rank0 = run(ShardSpec(tp=8, rank=0))
    misses_after_first = cache.misses
    # a different rank is a different key: must capture, not replay
    rank7 = run(ShardSpec(tp=8, rank=7))
    assert cache.misses > misses_after_first
    assert _stream(rank0) != _stream(rank7)
    # the same shard replays bit-identically
    again = run(ShardSpec(tp=8, rank=0))
    assert _stream(again) == _stream(rank0)


def test_tiled_estimate_shards_and_caches():
    cache = GraphCache()
    cluster = make_cluster(4)

    def run():
        ctx = ExecutionContext(A100_SPEC, cluster=cluster)
        us = estimate_model_tiled(
            ctx, CONFIG, FUSED_MHA, 512, MAX_SEQ_LEN,
            shard=ShardSpec(tp=4, rank=0), cache=cache,
        )
        return us, ctx

    first_us, first_ctx = run()
    second_us, _ = run()
    assert cache.hits >= 1
    assert first_us == second_us
    assert any(r.launch.is_collective for r in first_ctx.records)
