"""Activation-memory planner: traces, peak accounting, arena allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BASELINE, FUSED_MHA, RM_PADDING, BertConfig
from repro.core.memory_planner import (
    ActivationTrace,
    ArenaAllocator,
    memory_report,
    peak_live_bytes,
    trace_encoder_layer,
    trace_model,
)

CFG = BertConfig(num_layers=2)


def lens(*values):
    return np.asarray(values, dtype=np.int64)


class TestTrace:
    def test_alloc_free_balance(self):
        t = ActivationTrace()
        t.alloc("a", 100)
        t.alloc("b", 50)
        assert t.live_bytes == 150
        t.free("a")
        assert t.live_bytes == 50
        t.free_all()
        assert t.live_bytes == 0

    def test_double_alloc_rejected(self):
        t = ActivationTrace()
        t.alloc("a", 10)
        with pytest.raises(ValueError, match="already live"):
            t.alloc("a", 10)

    def test_free_unknown_rejected(self):
        with pytest.raises(ValueError, match="not live"):
            ActivationTrace().free("ghost")

    def test_zero_alloc_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ActivationTrace().alloc("a", 0)

    def test_peak_simple(self):
        t = ActivationTrace()
        t.alloc("a", 100)
        t.alloc("b", 200)
        t.free("a")
        t.alloc("c", 50)
        t.free_all()
        assert peak_live_bytes(t) == 300

    def test_leaky_trace_rejected(self):
        t = ActivationTrace()
        t.alloc("a", 10)
        with pytest.raises(ValueError, match="leaks"):
            peak_live_bytes(t)


class TestArenaAllocator:
    def test_reuses_freed_space(self):
        arena = ArenaAllocator(alignment=1)
        arena.allocate("a", 100)
        arena.release("a")
        p = arena.allocate("b", 100)
        assert p.offset == 0
        assert arena.arena_bytes == 100

    def test_best_fit_prefers_tight_chunk(self):
        arena = ArenaAllocator(alignment=1)
        arena.allocate("big", 300)
        arena.allocate("keep1", 60)  # separates the two future holes
        arena.allocate("small", 50)
        arena.allocate("keep2", 10)
        arena.release("big")
        arena.release("small")
        # 40-byte request fits both holes; best fit picks the 50-byte one
        p = arena.allocate("x", 40)
        assert p.offset == 360

    def test_coalescing(self):
        arena = ArenaAllocator(alignment=1)
        arena.allocate("a", 64)
        arena.allocate("b", 64)
        arena.allocate("c", 1)
        arena.release("a")
        arena.release("b")
        # the two adjacent holes coalesce into one 128-byte chunk
        p = arena.allocate("big", 128)
        assert p.offset == 0

    def test_alignment(self):
        arena = ArenaAllocator(alignment=256)
        arena.allocate("a", 10)
        p = arena.allocate("b", 10)
        assert p.offset % 256 == 0

    def test_release_unknown_rejected(self):
        with pytest.raises(ValueError, match="not placed"):
            ArenaAllocator().release("ghost")

    @given(
        ops=st.lists(
            st.tuples(st.integers(1, 1000), st.booleans()),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_no_live_overlap_property(self, ops):
        """Live placements never overlap, and the arena is at least the
        peak live footprint (with alignment slack)."""
        arena = ArenaAllocator(alignment=1)
        live = {}
        counter = 0
        for size, release_one in ops:
            if release_one and live:
                name = next(iter(live))
                arena.release(name)
                del live[name]
            else:
                name = f"t{counter}"
                counter += 1
                live[name] = size
                arena.allocate(name, size)
            placements = arena.live_placements()
            for a, b in zip(placements, placements[1:]):
                assert a.end <= b.offset
        assert arena.arena_bytes >= sum(live.values())


class TestPipelineTraces:
    def test_padded_peak_dominated_by_scores(self):
        workload = lens(500, 600, 512, 640)
        trace = trace_encoder_layer(CFG, BASELINE, workload, 640)
        peak = peak_live_bytes(trace)
        score_bytes = 4 * CFG.num_heads * 640 * 640 * 2
        assert peak > score_bytes  # scores plus the live operands

    def test_packed_fused_short_never_materialises_scores(self):
        workload = lens(100, 120, 90)
        trace = trace_encoder_layer(CFG, FUSED_MHA, workload, 128)
        names = {e.tensor for e in trace if e.bytes > 0}
        assert not any("scores" in n for n in names)

    def test_packed_fused_long_has_packed_scores(self):
        workload = lens(500, 600, 512)
        trace = trace_encoder_layer(CFG, FUSED_MHA, workload, 640)
        allocs = {e.tensor: e.bytes for e in trace if e.bytes > 0}
        score_key = next(n for n in allocs if "scores" in n)
        expected = int((workload.astype(np.int64) ** 2).sum()) * CFG.num_heads * 2
        assert allocs[score_key] == expected

    def test_fused_uses_less_memory_than_baseline(self):
        workload = lens(150, 200, 180, 256)
        base = memory_report(CFG, BASELINE, workload, 256)
        fused = memory_report(CFG, FUSED_MHA, workload, 256)
        assert fused.peak_bytes < base.peak_bytes
        assert fused.arena_bytes < base.arena_bytes

    def test_packing_alone_already_helps(self):
        workload = lens(150, 200, 180, 256)
        base = memory_report(CFG, BASELINE, workload, 256)
        packed = memory_report(CFG, RM_PADDING, workload, 256)
        assert packed.peak_bytes < base.peak_bytes

    def test_arena_at_least_peak(self):
        workload = lens(64, 100, 80)
        for opt in (BASELINE, RM_PADDING, FUSED_MHA):
            trace = trace_model(CFG, opt, workload, 128)
            peak = peak_live_bytes(trace)
            arena = ArenaAllocator().replay(
                trace_model(CFG, opt, workload, 128)
            )
            assert arena >= peak * 0.99

    def test_model_trace_balances(self):
        workload = lens(64, 100, 80)
        trace = trace_model(CFG, FUSED_MHA, workload, 128)
        assert peak_live_bytes(trace) > 0  # raises if unbalanced

    def test_layers_share_arena(self):
        """Layer activations are freed layer by layer, so the arena for 2
        layers is far below 2x one layer's."""
        workload = lens(128, 100, 110)
        one = BertConfig(num_layers=1)
        two = BertConfig(num_layers=2)
        arena_one = ArenaAllocator().replay(
            trace_model(one, BASELINE, workload, 128)
        )
        arena_two = ArenaAllocator().replay(
            trace_model(two, BASELINE, workload, 128)
        )
        assert arena_two < 1.3 * arena_one
