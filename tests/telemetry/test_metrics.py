"""Metrics registry: exact quantiles, exposition format, strict parser."""

import numpy as np
import pytest

from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    PrometheusFormatError,
    SloPolicy,
    SloReport,
    parse_prometheus,
)
from repro.telemetry.slo import (
    DEADLINE_MET_TOTAL,
    DEADLINE_REQUESTS_TOTAL,
    REQUEST_LATENCY_US,
    REQUESTS_TOTAL,
)


class TestHistogram:
    def test_percentiles_are_exact(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        samples = [3.0, 17.0, 42.0, 99.0, 640.0]
        for s in samples:
            h.observe(s)
        for q in (50, 95, 99):
            assert h.percentile(q) == float(np.percentile(samples, q))

    def test_cumulative_counts_end_at_count(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        for s in (0.5, 5.0, 5.0, 50.0):
            h.observe(s)
        assert h.cumulative_counts() == [1, 3, 4]
        assert h.count == 4

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0,)).percentile(50)

    def test_bucket_bounds_validated(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(10.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("requests_total", outcome="served")
        b = reg.counter("requests_total", outcome="served")
        assert a is b
        assert reg.counter("requests_total", outcome="shed") is not a

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_find_never_creates(self):
        reg = MetricsRegistry()
        assert reg.find("absent") is None
        assert len(reg) == 0


class TestExposition:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("req_total", help="requests", outcome="served").inc(3)
        reg.gauge("depth").set(7.5)
        h = reg.histogram("lat_us", help="latency", buckets=(10.0, 100.0))
        h.observe(5.0)
        h.observe(50.0)
        return reg

    def test_round_trips_through_parser(self):
        series = parse_prometheus(self.make_registry().to_prometheus())
        assert series['req_total{outcome="served"}'] == 3.0
        assert series["depth"] == 7.5
        assert series['lat_us_bucket{le="+Inf"}'] == 2.0
        assert series["lat_us_count"] == 2.0

    def test_parser_rejects_duplicate_series(self):
        with pytest.raises(PrometheusFormatError):
            parse_prometheus("a 1\na 2\n")

    def test_parser_rejects_garbage(self):
        with pytest.raises(PrometheusFormatError):
            parse_prometheus("not a metric line at all!\n")

    def test_snapshot_is_jsonable_and_exact(self):
        import json

        snap = self.make_registry().snapshot()
        json.dumps(snap)  # must not raise
        hist = next(e for e in snap if e["name"] == "lat_us")
        assert hist["count"] == 2
        assert hist["p50"] == 27.5


class TestJsonlRoundTrip:
    def test_spans_then_metrics_with_discriminator(self, tmp_path):
        from repro.telemetry import (
            Telemetry,
            read_telemetry_jsonl,
            write_telemetry_jsonl,
        )

        tel = Telemetry()
        tel.tracer.instant("mark", request_id=1)
        tel.metrics.counter("hits_total").inc()
        tel.metrics.histogram("lat_us", buckets=(10.0,)).observe(3.0)
        path = write_telemetry_jsonl(tel, tmp_path / "t.jsonl")
        records = read_telemetry_jsonl(path)
        assert [r["kind"] for r in records] == ["span", "metric", "metric"]
        metric_kinds = {
            r["name"]: r["metric_kind"] for r in records if r["kind"] == "metric"
        }
        assert metric_kinds == {"hits_total": "counter", "lat_us": "histogram"}
        assert records[0]["name"] == "mark"


class TestSloReport:
    def test_burn_and_attainment_from_registry(self):
        reg = MetricsRegistry()
        reg.counter(REQUESTS_TOTAL, outcome="served").inc(98)
        reg.counter(REQUESTS_TOTAL, outcome="shed").inc(2)
        reg.counter(DEADLINE_REQUESTS_TOTAL).inc(100)
        reg.counter(DEADLINE_MET_TOTAL).inc(97)
        h = reg.histogram(REQUEST_LATENCY_US)
        for v in (100.0, 200.0, 300.0):
            h.observe(v)
        report = SloReport.from_registry(
            reg, SloPolicy(success_target=0.99, latency_target_us=250.0)
        )
        assert report.total == 100
        assert report.availability == 0.98
        # 2% bad against a 1% error budget: burning at 2x
        assert report.budget_burn == pytest.approx(2.0)
        assert report.deadline_attainment == 0.97
        assert not report.availability_met
        assert report.latency_met is False
        text = report.render_text()
        assert "== SLO ==" in text
        assert "burn" in text
