"""Telemetry on/off must be bitwise-neutral to every replay.

The hard invariant of the telemetry layer: installing a
:class:`~repro.telemetry.Telemetry` observes a replay without perturbing
it — identical outcome logs, identical modelled timeline, identical
injected-fault sequence, and (on the numeric plane) bit-identical served
outputs.  Checked over the length-distribution matrix the vectorized
engine is gated on, including seeded-chaos runs with retries, deadlines
and degradation.
"""

import numpy as np
import pytest

from repro.core.config import BertConfig
from repro.core.model import BertEncoderModel
from repro.serving import (
    DegradationLadder,
    FaultSpec,
    NO_FAULTS,
    ServingRuntime,
)
from repro.telemetry import Telemetry
from repro.workloads.batching import ContinuousBatcher, TimeoutBatcher
from repro.workloads.generator import LengthDistribution
from repro.workloads.serving import make_trace

CONFIG = BertConfig(num_heads=4, head_size=16, num_layers=2)
CHAOS = FaultSpec(
    launch_failure_rate=0.06,
    transient_oom_rate=0.04,
    slow_rate=0.05,
    slow_factor=4.0,
    target_prefixes=("fused_mha", "fmha_"),
)


def run_replay(trace, *, batcher, faults, telemetry, numerics=None):
    runtime = ServingRuntime(
        CONFIG,
        batcher=batcher,
        ladder=DegradationLadder(
            trip_threshold=2, window_us=20_000.0, cooldown_us=15_000.0
        ),
        faults=faults,
        numerics=numerics,
        seed=11,
        telemetry=telemetry,
    )
    return runtime.run(trace)


def assert_replays_identical(trace, make_batcher, faults, numerics=False):
    reports = [
        run_replay(
            trace,
            batcher=make_batcher(),
            faults=faults,
            telemetry=tel,
            numerics=(
                BertEncoderModel(CONFIG, seed=11) if numerics else None
            ),
        )
        for tel in (None, Telemetry())
    ]
    off, on = reports
    assert on.outcome_log() == off.outcome_log()
    assert on.gpu_busy_us == off.gpu_busy_us
    assert on.makespan_us == off.makespan_us
    assert on.injected_faults == off.injected_faults
    assert on.transitions == off.transitions
    assert set(on.outputs) == set(off.outputs)
    for rid in off.outputs:
        assert np.array_equal(on.outputs[rid], off.outputs[rid])


@pytest.mark.parametrize(
    "distribution",
    [
        LengthDistribution.UNIFORM,
        LengthDistribution.NORMAL,
        LengthDistribution.ZIPF,
    ],
)
@pytest.mark.parametrize("alpha", [0.3, 0.6, 0.95])
def test_cost_plane_neutral_over_length_matrix(distribution, alpha):
    trace = make_trace(
        32,
        96,
        alpha=alpha,
        distribution=distribution,
        mean_interarrival_us=300.0,
        seed=3,
    )
    assert_replays_identical(trace, TimeoutBatcher, NO_FAULTS)


@pytest.mark.parametrize(
    "make_batcher",
    [
        lambda: TimeoutBatcher(batch_size=8, timeout_us=2000.0),
        lambda: ContinuousBatcher(token_budget=1024),
    ],
    ids=["timeout", "continuous"],
)
def test_seeded_chaos_neutral(make_batcher):
    # deadlines + faults: retries, backoff, shedding and the ladder all
    # fire, and the telemetry-on replay must still be bit-for-bit the
    # telemetry-off replay
    trace = make_trace(
        48, 96, mean_interarrival_us=250.0, seed=5, deadline_us=50_000.0
    )
    assert_replays_identical(trace, make_batcher, CHAOS)


def test_numeric_plane_outputs_bitwise_neutral():
    trace = make_trace(16, 64, mean_interarrival_us=400.0, seed=9)
    assert_replays_identical(
        trace,
        lambda: TimeoutBatcher(batch_size=8, timeout_us=2000.0),
        CHAOS,
        numerics=True,
    )


@pytest.mark.parametrize(
    "distribution",
    [
        LengthDistribution.UNIFORM,
        LengthDistribution.NORMAL,
        LengthDistribution.ZIPF,
    ],
)
@pytest.mark.parametrize("faults", [NO_FAULTS, CHAOS], ids=["clean", "chaos"])
def test_observe_attribution_neutral_over_length_matrix(distribution, faults):
    """Building every repro.observe report over a replay's telemetry is
    pure post-hoc: outputs, modelled µs and the fault/ladder streams
    match the telemetry-off replay exactly, and a fresh observed replay
    after report-building is still bit-identical (report construction
    leaked no state into caches or RNG streams)."""
    from repro.gpusim.profiler import ProfileReport
    from repro.gpusim.trace import telemetry_chrome_trace
    from repro.observe import CriticalPathReport, tail_forensics

    trace = make_trace(
        32,
        96,
        alpha=0.6,
        distribution=distribution,
        mean_interarrival_us=250.0,
        seed=3,
        deadline_us=50_000.0,
    )
    make_batcher = lambda: ContinuousBatcher(token_budget=1024)  # noqa: E731
    make_numerics = lambda: BertEncoderModel(CONFIG, seed=11)  # noqa: E731
    off = run_replay(
        trace, batcher=make_batcher(), faults=faults,
        telemetry=None, numerics=make_numerics(),
    )
    tel = Telemetry()
    on = run_replay(
        trace, batcher=make_batcher(), faults=faults,
        telemetry=tel, numerics=make_numerics(),
    )
    # build the full attribution stack over the observed run
    cp = CriticalPathReport.from_telemetry(tel)
    tail_forensics(cp)
    ProfileReport.from_segments(tel.kernel_segments)
    telemetry_chrome_trace(tel, critical_path=cp.critical_request())

    again = run_replay(
        trace, batcher=make_batcher(), faults=faults,
        telemetry=Telemetry(), numerics=make_numerics(),
    )
    for observed in (on, again):
        assert observed.outcome_log() == off.outcome_log()
        assert observed.gpu_busy_us == off.gpu_busy_us
        assert observed.makespan_us == off.makespan_us
        assert observed.injected_faults == off.injected_faults
        assert observed.transitions == off.transitions
        assert set(observed.outputs) == set(off.outputs)
        for rid in off.outputs:
            assert np.array_equal(observed.outputs[rid], off.outputs[rid])
    # the attribution actually decomposed the replay it observed
    assert cp.requests and cp.batches


def test_telemetry_actually_observed_something():
    # guard against the trivial way to pass neutrality: not recording
    trace = make_trace(24, 96, mean_interarrival_us=250.0, seed=5)
    tel = Telemetry()
    run_replay(
        trace, batcher=ContinuousBatcher(token_budget=1024),
        faults=CHAOS, telemetry=tel,
    )
    assert tel.tracer.depth == 0  # the span stack drained
    names = {s.name for s in tel.tracer.completed()}
    assert {"request", "dispatch.megabatch", "attempt", "graph.replay"} \
        <= names
    assert tel.kernel_event_count() > 0
    assert len(tel.metrics) > 0
