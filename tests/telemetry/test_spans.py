"""Span tracer: nesting, correlation inheritance, thread confinement."""

import threading

import pytest

from repro.telemetry import SpanTracer


class TestNesting:
    def test_children_follow_call_order(self):
        tr = SpanTracer()
        outer = tr.begin("outer")
        tr.begin("first")
        tr.end()
        tr.begin("second")
        tr.end()
        tr.end()
        assert [s.name for s in tr.children_of(outer)] == ["first", "second"]

    def test_depth_tracks_open_spans(self):
        tr = SpanTracer()
        assert tr.depth == 0
        tr.begin("a")
        tr.begin("b")
        assert tr.depth == 2
        tr.end()
        assert tr.depth == 1

    def test_end_without_open_span_raises(self):
        with pytest.raises(RuntimeError):
            SpanTracer().end()

    def test_end_before_start_raises(self):
        tr = SpanTracer()
        tr.begin("a", start_us=100.0)
        with pytest.raises(ValueError):
            tr.end(end_us=50.0)

    def test_context_manager_closes_on_exception(self):
        tr = SpanTracer()
        with pytest.raises(KeyError):
            with tr.span("doomed"):
                raise KeyError("boom")
        assert tr.depth == 0
        assert tr.completed()[0].name == "doomed"


class TestCorrelation:
    def test_child_inherits_request_and_batch_ids(self):
        tr = SpanTracer()
        tr.begin("dispatch", request_id=7, batch_id=3)
        child = tr.begin("graph.replay")
        assert child.request_id == 7
        assert child.batch_id == 3

    def test_explicit_ids_override_inheritance(self):
        tr = SpanTracer()
        tr.begin("dispatch", request_id=7)
        child = tr.begin("inner", request_id=9)
        assert child.request_id == 9

    def test_by_request_finds_correlated_spans(self):
        tr = SpanTracer()
        tr.instant("admit", request_id=4)
        tr.add_span(
            "request", category="request", start_us=0.0, end_us=5.0,
            request_id=4,
        )
        tr.instant("admit", request_id=5)
        assert [s.request_id for s in tr.by_request(4)] == [4, 4]


class TestClockAndThreads:
    def test_cursor_defaults_span_times(self):
        tr = SpanTracer()
        tr.set_now(250.0)
        span = tr.begin("a")
        tr.set_now(300.0)
        tr.end()
        assert (span.start_us, span.end_us) == (250.0, 300.0)

    def test_end_never_precedes_start_via_cursor(self):
        # the cursor may rewind (per-request arrival times); a span that
        # closes at an earlier cursor clamps to its own start
        tr = SpanTracer()
        tr.set_now(100.0)
        tr.begin("a")
        tr.set_now(40.0)
        span = tr.end()
        assert span.end_us == 100.0

    def test_foreign_thread_is_ignored(self):
        tr = SpanTracer()
        tr.begin("main-side")

        def record():
            assert not tr.owns_current_thread()
            tr.set_now(1e9)
            tr.begin("worker-side")
            assert tr.end() is None
            assert tr.instant("worker-mark") is None

        worker = threading.Thread(target=record)
        worker.start()
        worker.join()
        tr.end()
        assert [s.name for s in tr.spans] == ["main-side"]
        assert tr.now_us == 0.0
