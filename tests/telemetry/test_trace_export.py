"""Chrome-trace export of telemetry: round-trip, ordering, acceptance.

Satellite coverage for :func:`repro.gpusim.trace.to_chrome_trace` with a
span layer, plus the PR's acceptance criterion: a chaos replay's
exported trace contains, for a single request id, its admission span,
the megabatch/tile span it rode, the graph replay that priced it and —
when chaos fires — its retry spans, all stacked above the kernel events.
"""

import json

from repro.core.config import BertConfig
from repro.gpusim import ExecutionContext, KernelLaunch
from repro.gpusim.trace import (
    KERNEL_TID,
    SPAN_TID,
    telemetry_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_telemetry_trace,
)
from repro.serving import DegradationLadder, FaultSpec, ServingRuntime
from repro.telemetry import SpanTracer, Telemetry
from repro.workloads.batching import ContinuousBatcher
from repro.workloads.serving import make_trace


def make_ctx(n=2):
    ctx = ExecutionContext()
    for i in range(n):
        ctx.launch(
            KernelLaunch(
                name=f"gemm{i}",
                category="gemm",
                grid=64,
                block_threads=256,
                flops=1e9,
                dram_bytes=1e6,
            )
        )
    return ctx


def make_tracer_matching(ctx):
    """A span layer enclosing the context's kernel timeline."""
    tr = SpanTracer()
    tr.begin("dispatch", category="dispatch", start_us=0.0, batch_id=0)
    tr.begin("attempt", category="attempt")
    tr.instant("mark", t_us=ctx.records[0].time_us)
    tr.end(end_us=ctx.elapsed_us())
    tr.end(end_us=ctx.elapsed_us())
    tr.add_span(
        "request",
        category="request",
        start_us=0.0,
        end_us=ctx.elapsed_us(),
        request_id=42,
    )
    return tr


class TestSpanLayerRoundTrip:
    def test_exported_json_reparses(self, tmp_path):
        ctx = make_ctx()
        tr = make_tracer_matching(ctx)
        path = write_chrome_trace(
            ctx, tmp_path / "t.json", spans=tr.spans
        )
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]
        phases = {e["ph"] for e in loaded["traceEvents"]}
        assert {"M", "X", "i", "b", "e"} <= phases

    def test_timestamps_monotone_per_thread(self):
        ctx = make_ctx(4)
        tr = make_tracer_matching(ctx)
        trace = to_chrome_trace(ctx, spans=tr.spans)
        by_tid = {}
        for e in trace["traceEvents"]:
            if e["ph"] in ("X", "i"):
                by_tid.setdefault(e["tid"], []).append(e["ts"])
        for tid, stamps in by_tid.items():
            assert stamps == sorted(stamps), f"tid {tid} out of order"

    def test_nesting_matches_recorded_call_order(self):
        ctx = make_ctx()
        tr = make_tracer_matching(ctx)
        trace = to_chrome_trace(ctx, spans=tr.spans)
        complete = [
            e
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e["tid"] == SPAN_TID
        ]
        # the enclosing dispatch sorts before the attempt it contains,
        # and the attempt's interval sits inside the dispatch's
        assert [e["name"] for e in complete] == ["dispatch", "attempt"]
        outer, inner = complete
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_kernels_move_below_span_row(self):
        ctx = make_ctx()
        tr = make_tracer_matching(ctx)
        trace = to_chrome_trace(ctx, spans=tr.spans)
        kernel_tids = {
            e["tid"]
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"].startswith("gemm")
        }
        assert kernel_tids == {KERNEL_TID}

    def test_without_spans_layout_unchanged(self):
        # the original single-thread export contract must survive
        trace = to_chrome_trace(make_ctx())
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert all(e["tid"] == 0 for e in complete)
        assert len([e for e in trace["traceEvents"] if e["ph"] == "M"]) == 2

    def test_request_spans_are_async_pairs(self):
        ctx = make_ctx()
        tr = make_tracer_matching(ctx)
        trace = to_chrome_trace(ctx, spans=tr.spans)
        begins = [e for e in trace["traceEvents"] if e["ph"] == "b"]
        ends = [e for e in trace["traceEvents"] if e["ph"] == "e"]
        assert len(begins) == len(ends) == 1
        assert begins[0]["id"] == ends[0]["id"] == "42"


class TestChaosReplayAcceptance:
    """The PR acceptance criterion, end to end."""

    def run_chaos(self):
        tel = Telemetry()
        trace = make_trace(
            60, 96, mean_interarrival_us=250.0, seed=11
        )
        runtime = ServingRuntime(
            BertConfig(num_heads=4, head_size=16, num_layers=2),
            batcher=ContinuousBatcher(token_budget=1024),
            ladder=DegradationLadder(
                trip_threshold=2, window_us=20_000.0, cooldown_us=15_000.0
            ),
            faults=FaultSpec(
                launch_failure_rate=0.06,
                transient_oom_rate=0.04,
                slow_rate=0.05,
                slow_factor=4.0,
                target_prefixes=("fused_mha", "fmha_"),
            ),
            seed=11,
            telemetry=tel,
        )
        report = runtime.run(trace)
        return tel, report

    def test_one_request_yields_full_causal_story(self, tmp_path):
        tel, report = self.run_chaos()
        retried = [o for o in report.outcomes if o.retries > 0]
        assert retried, "chaos seed must produce at least one retry"
        rid = retried[0].request_id

        path = write_telemetry_trace(tel, tmp_path / "chaos.json")
        events = json.loads(path.read_text())["traceEvents"]

        # request-root async span keyed by the request id
        roots = [
            e for e in events if e["ph"] == "b" and e["id"] == str(rid)
        ]
        assert len(roots) == 1

        # admission instant for the request
        admits = [
            e
            for e in events
            if e["ph"] == "i"
            and e["name"] == "admission.admit"
            and e["args"].get("request_id") == rid
        ]
        assert len(admits) == 1

        # the megabatch/tile dispatch the request rode
        dispatches = [
            e
            for e in events
            if e["ph"] == "X"
            and e["name"] == "dispatch.megabatch"
            and rid in e["args"].get("request_ids", [])
        ]
        assert len(dispatches) == 1
        dispatch = dispatches[0]
        assert dispatch["args"]["tile"] > 0
        batch_id = dispatch["args"]["batch_id"]

        # a graph replay priced the megabatch...
        replays = [
            e
            for e in events
            if e["ph"] == "X"
            and e["name"] == "graph.replay"
            and e["args"].get("batch_id") == batch_id
        ]
        assert replays

        # ...and the retried request's batch shows its backoff span
        backoffs = [
            e
            for e in events
            if e["ph"] == "X"
            and e["name"] == "retry.backoff"
            and e["args"].get("batch_id") == batch_id
        ]
        assert backoffs

        # spans stack above the kernel timeline: kernels live on their
        # own row, and the dispatch interval covers kernel activity
        kernels = [
            e
            for e in events
            if e["ph"] == "X" and e.get("tid") == KERNEL_TID
        ]
        assert kernels
        assert all(
            e.get("tid") == SPAN_TID for e in dispatches + replays
        )
        lo = dispatch["ts"]
        hi = dispatch["ts"] + dispatch["dur"]
        assert any(lo <= k["ts"] <= hi for k in kernels)

    def test_span_stack_balanced_after_chaos(self):
        tel, _ = self.run_chaos()
        assert tel.tracer.depth == 0
        assert all(s.end_us is not None for s in tel.tracer.spans)

    def test_telemetry_trace_thread_names(self):
        tel, _ = self.run_chaos()
        trace = telemetry_chrome_trace(tel, device_name="A100")
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"serving (A100)", "stages", "kernels"} <= names
