"""Shared fixtures: small-but-real model shapes for fast numeric tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BertConfig
from repro.core.padding import packing_from_lengths
from repro.core.weights import init_model_weights
from repro.workloads.generator import make_batch


@pytest.fixture(scope="session")
def small_config() -> BertConfig:
    """A 4-head, head-size-16, 2-layer config: cheap but structurally
    identical to BERT-base (hidden = heads * head_size, FFN scale 4)."""
    return BertConfig(num_heads=4, head_size=16, num_layers=2)


@pytest.fixture(scope="session")
def small_weights(small_config):
    return init_model_weights(small_config, seed=7)


@pytest.fixture(scope="session")
def small_layer(small_weights):
    return small_weights.layers[0]


@pytest.fixture()
def small_batch(small_config):
    """Variable-length batch: 5 sentences, max length 48, alpha 0.6."""
    return make_batch(
        5, 48, small_config.hidden_size, alpha=0.6, seed=11
    )


@pytest.fixture()
def small_packing(small_batch):
    return packing_from_lengths(small_batch.seq_lens, small_batch.max_seq_len)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
