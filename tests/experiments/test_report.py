"""Consolidated paper-vs-measured report: the executable EXPERIMENTS.md."""

import re

import pytest

from repro.experiments.report import collect


@pytest.fixture(scope="module")
def report():
    return collect(fast=True)


def parse_percent(text: str) -> float | None:
    match = re.fullmatch(r"~?\+?(-?\d+(?:\.\d+)?)%", text.strip())
    return float(match.group(1)) if match else None


class TestReport:
    def test_covers_every_comparable_figure(self, report):
        metrics = " ".join(c.metric for c in report.comparisons)
        for token in (
            "Fig 3",
            "Fig 9",
            "Fig 10",
            "Table II",
            "Fig 11",
            "Fig 12",
            "Fig 13",
            "Fig 14",
            "III-E.2",
        ):
            assert token in metrics

    def test_renders_both_formats(self, report):
        text = report.render_text()
        md = report.render_markdown()
        assert "paper vs measured" in text
        assert md.startswith("| claim | paper | ours |")
        assert len(md.splitlines()) == len(report.comparisons) + 2

    def test_every_percent_claim_within_shape_band(self, report):
        """Executable reproduction contract: every percentage claim we
        measure lands within a factor of ~2.6 of the paper's number
        (except the two documented deviations, which get a wider band)."""
        wide_band = ("Fig 12: fused MHA vs PyTorch", "Fig 10")
        for comp in report.comparisons:
            paper = parse_percent(comp.paper)
            ours = parse_percent(comp.measured)
            if paper is None or ours is None or paper == 0:
                continue
            ratio = ours / paper
            if any(comp.metric.startswith(w) for w in wide_band):
                assert 0.2 <= ratio <= 5.0, comp.render()
            else:
                assert 0.38 <= ratio <= 2.6, comp.render()

    def test_signs_always_agree(self, report):
        """No measured claim may point the opposite way from the paper."""
        for comp in report.comparisons:
            paper = parse_percent(comp.paper)
            ours = parse_percent(comp.measured)
            if paper is None or ours is None:
                continue
            assert (paper >= 0) == (ours >= 0), comp.render()
