"""Extension experiments: memory footprint and FlashAttention sweeps."""

import pytest

from repro.experiments import ablation_flash, ablation_memory


class TestMemoryAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_memory.run(seq_lens=(128, 256, 384, 512, 1024))

    def test_gain_monotone_in_short_regime(self, result):
        assert result.reduction_grows_within_short_regime()

    def test_substantial_everywhere(self, result):
        assert result.reduction_substantial(1.5)

    def test_arena_never_smaller_than_needed(self, result):
        for p in result.points:
            assert p.baseline.arena_bytes >= p.baseline.peak_bytes
            assert p.fused.arena_bytes >= p.fused.peak_bytes

    def test_grouped_kernel_rematerialises_scores(self, result):
        """Peak gain steps down crossing the short/long dispatch boundary
        (the grouped kernel stores packed scores, the short one nothing)."""
        by_seq = {p.max_seq_len: p.peak_reduction for p in result.points}
        assert by_seq[512] < by_seq[384]

    def test_formatting(self, result):
        text = ablation_memory.format_result(result)
        assert "peak gain" in text


class TestFlashAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_flash.run()

    def test_flash_alpha_independent(self, result):
        assert result.flash_cost_alpha_independent()

    def test_gap_widens_as_alpha_falls(self, result):
        assert result.gap_widens_as_alpha_falls()

    def test_byte_transformer_wins_at_paper_alpha(self, result):
        at_06 = next(p for p in result.points if abs(p.alpha - 0.6) < 1e-9)
        assert at_06.byte_gain > 0.3

    def test_formatting(self, result):
        assert "FlashAttention" in ablation_flash.format_result(result)
