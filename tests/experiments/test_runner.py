"""Shared experiment-runner utilities."""

import numpy as np
import pytest

from repro.experiments.runner import (
    Comparison,
    format_us,
    geomean_speedup,
    paper_workload,
    render_table,
    speedup,
)
from repro.gpusim.memory import tensor_bytes, traffic


class TestSpeedups:
    def test_speedup_definition(self):
        assert speedup(200.0, 100.0) == pytest.approx(1.0)  # +100%
        assert speedup(100.0, 100.0) == pytest.approx(0.0)

    def test_speedup_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup(100.0, 0.0)

    def test_geomean_matches_single_pair(self):
        assert geomean_speedup([(300.0, 100.0)]) == pytest.approx(2.0)

    def test_geomean_is_geometric(self):
        # ratios 4 and 1 -> geometric mean 2 -> +100%
        pairs = [(400.0, 100.0), (100.0, 100.0)]
        assert geomean_speedup(pairs) == pytest.approx(1.0)

    def test_geomean_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean_speedup([])


class TestWorkload:
    def test_seeded_and_alpha(self):
        a = paper_workload(200, 512, seed=1)
        b = paper_workload(200, 512, seed=1)
        np.testing.assert_array_equal(a, b)
        assert abs(a.mean() / 512 - 0.6) < 0.05

    def test_different_seed_differs(self):
        a = paper_workload(50, 256, seed=1)
        b = paper_workload(50, 256, seed=2)
        assert not np.array_equal(a, b)


class TestRendering:
    def test_table_alignment(self):
        text = render_table(
            ("a", "b"), [(1, 2.5), ("x", "y")], title="t", col_width=8
        )
        lines = text.splitlines()
        assert lines[0] == "== t =="
        assert len(lines) == 4
        assert all(len(line) == 16 for line in lines[1:])

    def test_comparison_render(self):
        comp = Comparison("metric", "+10%", "+12%")
        line = comp.render()
        assert "paper" in line and "+10%" in line and "+12%" in line

    def test_format_us_units(self):
        assert format_us(150.0) == "150.0 us"
        assert format_us(25_000.0) == "25.00 ms"


class TestMemoryHelpers:
    def test_tensor_bytes_fp16_default(self):
        assert tensor_bytes(10, 20) == 400.0

    def test_tensor_bytes_custom_width(self):
        assert tensor_bytes(10, element_size=4) == 40.0

    def test_tensor_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            tensor_bytes(-1, 5)

    def test_traffic_sums_reads_and_writes(self):
        assert traffic(reads=(10, 20), writes=(5,)) == 35.0
        assert traffic() == 0.0
