"""Experiment harnesses: each must run and exhibit the paper's shape.

These are integration tests over the whole stack (kernels, simulator,
frameworks).  They assert the *direction and rough magnitude* of every
figure, not exact numbers — exactly the reproduction contract stated in
DESIGN.md.
"""

import pytest

from repro.experiments import (
    ablation_alpha,
    ablation_devices,
    ablation_scheduler,
    fig3_breakdown,
    fig9_layernorm_fusion,
    fig10_gelu_fusion,
    fig11_mha_short,
    fig12_mha_long,
    fig13_stepwise,
    fig14_end_to_end,
    table1_features,
    table2_flops,
)


class TestTable1:
    def test_matches_paper(self):
        assert table1_features.run().matches_paper

    def test_formatting(self):
        text = table1_features.format_result(table1_features.run())
        assert "matches paper: yes" in text


class TestFig3:
    def test_shares_close_to_paper(self):
        for res in fig3_breakdown.run_all():
            paper_gemm, paper_attn, paper_mem = fig3_breakdown.PAPER_SHARES[
                res.seq_len
            ]
            assert res.gemm_share == pytest.approx(paper_gemm, abs=0.10)
            assert res.attention_share == pytest.approx(paper_attn, abs=0.10)
            assert res.memory_bound_share == pytest.approx(
                paper_mem, abs=0.08
            )

    def test_attention_share_grows_with_seq(self):
        short = fig3_breakdown.run(256)
        long = fig3_breakdown.run(1024)
        assert long.attention_share > short.attention_share

    def test_shares_partition_time(self):
        res = fig3_breakdown.run(256)
        total = (
            res.gemm_share + res.attention_share + res.memory_bound_share
        )
        assert total == pytest.approx(1.0, abs=0.02)


class TestFig9:
    def test_gain_in_paper_band(self):
        result = fig9_layernorm_fusion.run()
        assert 0.45 <= result.average_gain <= 0.95  # paper: ~0.61-0.69

    def test_fused_always_faster(self):
        for p in fig9_layernorm_fusion.run().points:
            assert p.fused_us < p.unfused_us


class TestFig10:
    def test_fused_always_faster(self):
        for p in fig10_gelu_fusion.run().points:
            assert p.fused_us < p.unfused_us

    def test_fused_time_close_to_bare_gemm(self):
        """Epilogue fusion should hide almost all the bias/GELU cost."""
        for p in fig10_gelu_fusion.run().points:
            assert p.fused_us < 1.05 * p.gemm_us + 5.0


class TestTable2:
    def test_ratios_exact(self):
        result = table2_flops.run(batch=16, max_seq_len=512, alpha=0.6)
        base = result.columns["Baseline"]
        packed = result.columns["Zero Padding"]
        fused = result.columns["Zero Padding + fused MHA"]
        assert packed.gemm0 / base.gemm0 == pytest.approx(0.6)
        assert packed.mha == pytest.approx(base.mha)
        assert fused.mha / base.mha == pytest.approx(0.36)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_mha_short.run(seq_lens=(128, 256, 384))

    def test_ordering(self, result):
        for p in result.points:
            assert p.times_us["fused"] < p.times_us["zeropad"]
            assert p.times_us["zeropad"] < p.times_us["cublas"]
            assert p.times_us["cublas"] < p.times_us["pytorch"]

    def test_pytorch_gap_near_paper(self, result):
        gain = result.average_gain("pytorch")
        assert 4.0 <= gain <= 9.0  # paper: 6.17

    def test_zeropad_gap_near_paper(self, result):
        gain = result.average_gain("zeropad")
        assert 0.1 <= gain <= 0.7  # paper: 0.30


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_mha_long.run(seq_lens=(512, 768, 1024))

    def test_ordering(self, result):
        for p in result.points:
            assert p.times_us["fused"] < p.times_us["zeropad"]
            assert p.times_us["zeropad"] < p.times_us["cublas"]
            assert p.times_us["cublas"] < p.times_us["pytorch"]

    def test_zeropad_gap_near_paper(self, result):
        gain = result.average_gain("zeropad")
        assert 0.4 <= gain <= 1.3  # paper: 0.79

    def test_long_gains_exceed_short_gains(self, result):
        """The fused advantage over cuBLAS grows with sequence length —
        the quadratic-waste story of Table II."""
        short = fig11_mha_short.run(seq_lens=(128, 256))
        assert result.average_gain("cublas") > short.average_gain("cublas")


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_stepwise.run(seq_lens=(128, 256, 512, 1024))

    def test_every_step_improves(self, result):
        for point in result.points:
            for step in range(1, 5):
                assert point.step_gain(step) > -0.01

    def test_total_gain_near_paper(self, result):
        assert 0.4 <= result.average_total_gain <= 1.1  # paper: 0.60

    def test_zero_padding_is_biggest_contributor_class(self, result):
        """Padding removal (steps 3+4) dwarfs the fusion steps (1+2)."""
        fusion = result.average_step_gain(1) + result.average_step_gain(2)
        padding = result.average_step_gain(3) + result.average_step_gain(4)
        assert padding > fusion


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_end_to_end.run(
            batches=(8, 16), seq_lens=(128, 256, 512, 1024)
        )

    def test_byte_transformer_always_fastest(self, result):
        for p in result.points:
            bt = p.times_us["ByteTransformer"]
            for name, t in p.times_us.items():
                if name != "ByteTransformer":
                    assert bt < t, (p.batch, p.max_seq_len, name)

    def test_turbo_absent_beyond_512(self, result):
        for p in result.points:
            if p.max_seq_len >= 512:
                assert "TurboTransformer" not in p.times_us

    def test_average_gains_paper_ordering(self, result):
        gains = {
            name: result.average_gain(name)
            for name in (
                "PyTorch JIT",
                "TensorFlow XLA",
                "TurboTransformer",
                "FasterTransformer",
            )
        }
        assert gains["TurboTransformer"] > gains["PyTorch JIT"]
        assert gains["TensorFlow XLA"] > gains["PyTorch JIT"]
        assert gains["PyTorch JIT"] > gains["FasterTransformer"]
        assert gains["FasterTransformer"] > 0.1

    def test_formatting_has_three_batches(self):
        small = fig14_end_to_end.run(batches=(1, 8), seq_lens=(128,))
        text = fig14_end_to_end.format_result(small)
        assert "batch 1" in text and "batch 8" in text


class TestAblations:
    def test_scheduler_gain_near_ten_percent(self):
        result = ablation_scheduler.run(seq_lens=(512, 768, 1024))
        assert 0.04 <= result.average_gain <= 0.2  # paper: ~0.10

    def test_full_reduction_share_near_two_percent(self):
        result = ablation_scheduler.run(seq_lens=(512, 768, 1024))
        assert result.average_full_reduction_share <= 0.06  # paper: ~0.02

    def test_alpha_sweep_monotone(self):
        result = ablation_alpha.run(alphas=(0.4, 0.6, 0.8, 1.0))
        assert result.gains_monotone_decreasing()
        # even with no padding, fusion still wins
        assert result.points[-1].gain_vs_baseline > 0.0

    def test_device_sweep_bt_wins_everywhere(self):
        result = ablation_devices.run(seq_lens=(256, 1024))
        assert result.wins_everywhere()
