"""API health meta-tests: documentation and descriptor validity across the
whole public surface.

Two contracts a downstream user relies on:

* every public module, class and function carries a docstring (the
  documentation deliverable, enforced);
* every public ``*_launch`` builder produces a KernelLaunch the A100
  timing model accepts (no descriptor can silently violate device
  limits at realistic shapes).
"""

import importlib
import inspect
import pkgutil

import numpy as np
import pytest

import repro
from repro.gpusim import A100_SPEC, kernel_time_us


def walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(walk_modules())


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_module_documented(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_public_callables_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, (
            f"{module.__name__} has undocumented public names: "
            f"{undocumented}"
        )


class TestLaunchBuilders:
    """Every launch builder must emit a descriptor the device accepts."""

    def builders(self):
        from repro.attention.fused_short import fused_short_launch
        from repro.attention.flash_varlen import flash_varlen_launch
        from repro.attention.standard import standard_mha_launches
        from repro.decoder.generation import decode_attention_launch
        from repro.kernels.activation import (
            add_bias_gelu_launch,
            add_bias_launch,
            gelu_launch,
        )
        from repro.kernels.batched_gemm import batched_gemm_launch
        from repro.kernels.gemm import gemm_launch
        from repro.kernels.layernorm import (
            add_bias_residual_launch,
            fused_layernorm_launch,
            layernorm_launch,
        )
        from repro.kernels.packing import pack_launch, unpack_launch
        from repro.kernels.prefix_sum import prefix_sum_launch
        from repro.kernels.reduction import full_reduction_launch
        from repro.kernels.softmax import (
            add_mask_launch,
            scale_scores_launch,
            softmax_launch,
            zeropad_softmax_launch,
        )
        from repro.kernels.transpose import (
            add_bias_split_heads_packed_qkv_launch,
            add_bias_split_heads_qkv_launch,
            add_bias_unpack_split_heads_qkv_launch,
            pack_merge_heads_launch,
            split_heads_launch,
        )

        lens = np.array([100, 256, 180, 220])
        rows, hidden = 4096, 768
        yield gemm_launch(rows, hidden, hidden)
        yield batched_gemm_launch(48, 256, 256, 64)
        yield add_bias_launch(rows, hidden)
        yield gelu_launch(rows, hidden)
        yield add_bias_gelu_launch(rows, 4 * hidden)
        yield layernorm_launch(rows, hidden)
        yield fused_layernorm_launch(rows, hidden)
        yield add_bias_residual_launch(rows, hidden)
        yield softmax_launch(rows, 256)
        yield scale_scores_launch(rows, 256)
        yield add_mask_launch(rows, 256, 1024)
        yield zeropad_softmax_launch(list(lens), 12)
        yield pack_launch(756, hidden)
        yield unpack_launch(756, 1024, hidden)
        yield prefix_sum_launch(16, 256)
        yield full_reduction_launch(list(lens), 12)
        yield split_heads_launch(rows, hidden)
        yield add_bias_split_heads_qkv_launch(rows, 3 * hidden)
        yield add_bias_unpack_split_heads_qkv_launch(756, 1024, 3 * hidden)
        yield add_bias_split_heads_packed_qkv_launch(756, 3 * hidden)
        yield pack_merge_heads_launch(756, hidden)
        yield fused_short_launch(lens, 12, 64)
        yield flash_varlen_launch(lens, 12, 64)
        yield decode_attention_launch(lens, 12, 64)
        yield from standard_mha_launches(16, 256, 12, hidden)

    def test_all_builders_price_on_a100(self):
        count = 0
        for launch in self.builders():
            t = kernel_time_us(launch, A100_SPEC)
            assert t >= A100_SPEC.kernel_launch_overhead_us, launch.name
            assert np.isfinite(t), launch.name
            count += 1
        assert count >= 30

    def test_all_builders_carry_categories(self):
        for launch in self.builders():
            assert launch.category, launch.name
            assert launch.name, launch.category
