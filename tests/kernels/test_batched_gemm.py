"""Batched GEMM: numerics over batch axes and padded-cost accounting."""

import numpy as np
import pytest

from repro.gpusim import ExecutionContext
from repro.kernels.batched_gemm import batched_gemm, batched_gemm_launch


class TestNumerics:
    def test_matches_numpy_3d(self, rng):
        a = rng.normal(size=(4, 8, 6))
        b = rng.normal(size=(4, 6, 5))
        np.testing.assert_allclose(batched_gemm(a, b), a @ b, rtol=1e-12)

    def test_matches_numpy_4d(self, rng):
        a = rng.normal(size=(2, 3, 8, 6))
        b = rng.normal(size=(2, 3, 6, 5))
        np.testing.assert_allclose(batched_gemm(a, b), a @ b, rtol=1e-12)

    def test_transpose_b(self, rng):
        a = rng.normal(size=(4, 8, 6))
        b = rng.normal(size=(4, 5, 6))
        np.testing.assert_allclose(
            batched_gemm(a, b, transpose_b=True),
            a @ np.swapaxes(b, -1, -2),
            rtol=1e-12,
        )

    def test_attention_shape_qk(self, rng):
        """The Q K^T pattern: [B, H, S, d] @ [B, H, S, d]^T."""
        q = rng.normal(size=(2, 4, 16, 8))
        k = rng.normal(size=(2, 4, 16, 8))
        scores = batched_gemm(q, k, transpose_b=True)
        assert scores.shape == (2, 4, 16, 16)
        np.testing.assert_allclose(
            scores, q @ np.swapaxes(k, -1, -2), rtol=1e-12
        )


class TestValidation:
    def test_2d_rejected(self, rng):
        with pytest.raises(ValueError, match=">=3-D"):
            batched_gemm(rng.normal(size=(8, 6)), rng.normal(size=(6, 5)))

    def test_batch_axis_mismatch(self, rng):
        with pytest.raises(ValueError, match="batch axes"):
            batched_gemm(
                rng.normal(size=(4, 8, 6)), rng.normal(size=(3, 6, 5))
            )

    def test_inner_dim_mismatch(self, rng):
        with pytest.raises(ValueError, match="inner dims"):
            batched_gemm(
                rng.normal(size=(4, 8, 6)), rng.normal(size=(4, 7, 5))
            )

    def test_zero_batch_count_launch(self):
        with pytest.raises(ValueError, match="batch_count"):
            batched_gemm_launch(0, 8, 8, 8)


class TestCostModel:
    def test_one_launch_regardless_of_batch(self, rng):
        ctx = ExecutionContext()
        batched_gemm(
            rng.normal(size=(16, 32, 8)), rng.normal(size=(16, 8, 32)), ctx=ctx
        )
        assert ctx.kernel_count() == 1

    def test_flops_scale_with_batch(self):
        single = batched_gemm_launch(1, 64, 64, 32)
        many = batched_gemm_launch(12, 64, 64, 32)
        assert many.flops == pytest.approx(12 * single.flops)
        assert many.grid == 12 * single.grid

    def test_padded_shapes_cost_padded_flops(self, rng):
        """The core limitation: identical shapes mean padded batches burn
        real FLOPs for padding (motivates grouped GEMM)."""
        launch = batched_gemm_launch(4, 128, 128, 64)
        assert launch.flops == pytest.approx(4 * 2 * 128 * 128 * 64)

    def test_operands_counted_hot(self):
        launch = batched_gemm_launch(4, 128, 128, 64)
        # Q and K tiles were just written by the bias/transpose kernel
        assert launch.hot_bytes == pytest.approx(4 * 2 * (128 * 64) * 2)
        assert launch.dram_bytes == pytest.approx(4 * 128 * 128 * 2)
