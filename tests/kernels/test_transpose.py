"""Head split/merge kernels and their fused bias/pack variants."""

import numpy as np
import pytest

from repro.gpusim import ExecutionContext
from repro.kernels.transpose import (
    add_bias_split_heads_packed_qkv,
    add_bias_split_heads_qkv,
    add_bias_unpack_split_heads_qkv,
    merge_heads,
    pack_merge_heads,
    split_heads,
)

BATCH, SEQ, HEADS, HEAD_SIZE = 3, 6, 4, 8
HIDDEN = HEADS * HEAD_SIZE


def gather_for(lens, max_len):
    idx = []
    for b, length in enumerate(lens):
        idx.extend(b * max_len + i for i in range(length))
    return np.asarray(idx, dtype=np.int64)


class TestSplitMerge:
    def test_split_layout(self, rng):
        x = rng.normal(size=(BATCH * SEQ, HIDDEN))
        out = split_heads(x, BATCH, SEQ, HEADS)
        assert out.shape == (BATCH, HEADS, SEQ, HEAD_SIZE)
        # element (b, h, s, d) must come from row b*SEQ+s, column h*hs+d
        np.testing.assert_array_equal(
            out[1, 2, 3], x[1 * SEQ + 3, 2 * HEAD_SIZE : 3 * HEAD_SIZE]
        )

    def test_merge_inverts_split(self, rng):
        x = rng.normal(size=(BATCH * SEQ, HIDDEN))
        np.testing.assert_array_equal(
            merge_heads(split_heads(x, BATCH, SEQ, HEADS)), x
        )

    def test_split_validates_rows(self, rng):
        with pytest.raises(ValueError, match="rows"):
            split_heads(rng.normal(size=(7, HIDDEN)), BATCH, SEQ, HEADS)

    def test_split_validates_heads(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            split_heads(rng.normal(size=(BATCH * SEQ, HIDDEN)), BATCH, SEQ, 5)

    def test_merge_requires_4d(self, rng):
        with pytest.raises(ValueError, match=r"\[B, heads"):
            merge_heads(rng.normal(size=(4, 8)))


class TestFusedQkvSplit:
    def test_matches_manual(self, rng):
        qkv = rng.normal(size=(BATCH * SEQ, 3 * HIDDEN))
        bias = rng.normal(size=3 * HIDDEN)
        q, k, v = add_bias_split_heads_qkv(qkv, bias, BATCH, SEQ, HEADS)
        biased = qkv + bias
        for i, part in enumerate((q, k, v)):
            expected = split_heads(
                biased[:, i * HIDDEN : (i + 1) * HIDDEN], BATCH, SEQ, HEADS
            )
            np.testing.assert_allclose(part, expected, rtol=1e-12)

    def test_single_launch(self, rng):
        qkv = rng.normal(size=(BATCH * SEQ, 3 * HIDDEN))
        bias = rng.normal(size=3 * HIDDEN)
        ctx = ExecutionContext()
        add_bias_split_heads_qkv(qkv, bias, BATCH, SEQ, HEADS, ctx=ctx)
        assert ctx.kernel_count() == 1

    def test_width_not_divisible_by_3(self, rng):
        with pytest.raises(ValueError, match="divisible by 3"):
            add_bias_split_heads_qkv(
                rng.normal(size=(BATCH * SEQ, 32)),
                rng.normal(size=32),
                BATCH,
                SEQ,
                HEADS,
            )


class TestFusedUnpackSplit:
    def test_equivalent_to_unpack_then_split(self, rng):
        lens = [4, 6, 2]
        gather = gather_for(lens, SEQ)
        tokens = sum(lens)
        qkv_packed = rng.normal(size=(tokens, 3 * HIDDEN))
        bias = rng.normal(size=3 * HIDDEN)

        q, k, v = add_bias_unpack_split_heads_qkv(
            qkv_packed, bias, gather, BATCH, SEQ, HEADS
        )

        padded = np.zeros((BATCH * SEQ, 3 * HIDDEN))
        padded[gather] = qkv_packed + bias
        for i, part in enumerate((q, k, v)):
            expected = split_heads(
                padded[:, i * HIDDEN : (i + 1) * HIDDEN], BATCH, SEQ, HEADS
            )
            np.testing.assert_allclose(part, expected, rtol=1e-12)

    def test_padding_rows_zero(self, rng):
        lens = [2, 3, 1]
        gather = gather_for(lens, SEQ)
        qkv_packed = rng.normal(size=(sum(lens), 3 * HIDDEN))
        q, _, _ = add_bias_unpack_split_heads_qkv(
            qkv_packed, np.zeros(3 * HIDDEN), gather, BATCH, SEQ, HEADS
        )
        # batch 0 only has 2 valid positions
        assert (q[0, :, 2:, :] == 0).all()

    def test_gather_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="gather_idx"):
            add_bias_unpack_split_heads_qkv(
                rng.normal(size=(5, 3 * HIDDEN)),
                np.zeros(3 * HIDDEN),
                np.arange(4),
                BATCH,
                SEQ,
                HEADS,
            )


class TestPackedQkvSplit:
    def test_stays_packed(self, rng):
        tokens = 9
        qkv = rng.normal(size=(tokens, 3 * HIDDEN))
        bias = rng.normal(size=3 * HIDDEN)
        q, k, v = add_bias_split_heads_packed_qkv(qkv, bias, HEADS)
        assert q.shape == (tokens, HEADS, HEAD_SIZE)
        biased = qkv + bias
        np.testing.assert_allclose(
            q.reshape(tokens, HIDDEN), biased[:, :HIDDEN], rtol=1e-12
        )
        np.testing.assert_allclose(
            v.reshape(tokens, HIDDEN), biased[:, 2 * HIDDEN :], rtol=1e-12
        )


class TestPackMergeHeads:
    def test_equivalent_to_merge_then_pack(self, rng):
        lens = [3, 5, 4]
        gather = gather_for(lens, SEQ)
        attn = rng.normal(size=(BATCH, HEADS, SEQ, HEAD_SIZE))
        out = pack_merge_heads(attn, gather)
        expected = merge_heads(attn)[gather]
        np.testing.assert_array_equal(out, expected)

    def test_output_rows_equal_tokens(self, rng):
        lens = [1, 2, 3]
        gather = gather_for(lens, SEQ)
        attn = rng.normal(size=(BATCH, HEADS, SEQ, HEAD_SIZE))
        assert pack_merge_heads(attn, gather).shape == (6, HIDDEN)
