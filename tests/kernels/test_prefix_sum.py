"""Warp-level prefix sum: the kernel behind the zero-padding algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import ExecutionContext
from repro.kernels.prefix_sum import (
    WARP_SIZE,
    mask_prefix_sum,
    warp_inclusive_scan,
    warp_scan_sequence,
)


class TestWarpScan:
    def test_matches_cumsum(self, rng):
        lanes = rng.integers(0, 10, size=WARP_SIZE)
        np.testing.assert_array_equal(
            warp_inclusive_scan(lanes), np.cumsum(lanes)
        )

    def test_all_ones(self):
        out = warp_inclusive_scan(np.ones(WARP_SIZE, dtype=np.int64))
        np.testing.assert_array_equal(out, np.arange(1, WARP_SIZE + 1))

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError, match="lanes"):
            warp_inclusive_scan(np.ones(16, dtype=np.int64))

    @given(
        lanes=st.lists(
            st.integers(0, 1000), min_size=WARP_SIZE, max_size=WARP_SIZE
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_equals_cumsum(self, lanes):
        arr = np.asarray(lanes, dtype=np.int64)
        np.testing.assert_array_equal(
            warp_inclusive_scan(arr), np.cumsum(arr)
        )


class TestSequenceScan:
    @pytest.mark.parametrize("n", [1, 31, 32, 33, 64, 100, 257])
    def test_arbitrary_lengths(self, n, rng):
        tokens = rng.integers(0, 5, size=n)
        np.testing.assert_array_equal(
            warp_scan_sequence(tokens), np.cumsum(tokens)
        )

    def test_carry_across_chunks(self):
        tokens = np.ones(3 * WARP_SIZE + 7, dtype=np.int64)
        out = warp_scan_sequence(tokens)
        np.testing.assert_array_equal(out, np.arange(1, len(tokens) + 1))

    def test_requires_1d(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            warp_scan_sequence(rng.integers(0, 2, size=(4, 4)))

    @given(
        tokens=st.lists(st.integers(0, 1), min_size=1, max_size=200)
    )
    @settings(max_examples=50, deadline=None)
    def test_property_binary_masks(self, tokens):
        arr = np.asarray(tokens, dtype=np.int64)
        np.testing.assert_array_equal(
            warp_scan_sequence(arr), np.cumsum(arr)
        )


class TestMaskPrefixSum:
    def test_per_sentence_scan(self):
        mask = np.array([[1, 1, 0, 0], [1, 1, 1, 1], [1, 0, 0, 0]])
        out = mask_prefix_sum(mask)
        np.testing.assert_array_equal(
            out, np.cumsum(mask, axis=1)
        )

    def test_final_column_is_length(self):
        mask = np.array([[1, 1, 1, 0, 0], [1, 1, 1, 1, 1]])
        out = mask_prefix_sum(mask)
        np.testing.assert_array_equal(out[:, -1], [3, 5])

    def test_records_one_launch(self):
        ctx = ExecutionContext()
        mask_prefix_sum(np.ones((4, 8), dtype=np.int64), ctx=ctx)
        assert ctx.kernel_count() == 1

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="0s and 1s"):
            mask_prefix_sum(np.array([[2, 1]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match=r"\[B, S\]"):
            mask_prefix_sum(np.ones(8, dtype=np.int64))
