"""Two-phase softmax reduction (Figure 8) — the heart of the long FMHA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import ExecutionContext
from repro.kernels.reduction import (
    apply_softmax_transform,
    full_reduce_stats,
    full_reduction_kernel,
    full_reduction_launch,
    partial_softmax_stats,
    partial_stats_flops,
    partial_stats_store_bytes,
)
from repro.kernels.softmax import softmax_reference


class TestTwoPhaseReduction:
    def test_equals_direct_reduction(self, rng):
        scores = rng.normal(size=(10, 300))
        pmax, psum = partial_softmax_stats(scores, tile_n=128)
        row_max, row_sum = full_reduce_stats(pmax, psum)
        np.testing.assert_allclose(row_max, scores.max(axis=1), rtol=1e-12)
        direct_sum = np.exp(scores - scores.max(axis=1, keepdims=True)).sum(
            axis=1
        )
        np.testing.assert_allclose(row_sum, direct_sum, rtol=1e-12)

    def test_partial_block_count(self, rng):
        scores = rng.normal(size=(4, 257))
        pmax, psum = partial_softmax_stats(scores, tile_n=128)
        assert pmax.shape == (4, 3)  # ceil(257/128)
        assert psum.shape == (4, 3)

    def test_single_block_degenerates(self, rng):
        scores = rng.normal(size=(5, 64))
        pmax, psum = partial_softmax_stats(scores, tile_n=128)
        assert pmax.shape == (5, 1)
        row_max, row_sum = full_reduce_stats(pmax, psum)
        np.testing.assert_allclose(row_max, scores.max(axis=1))

    def test_rescaling_matters(self):
        """Blocks with very different maxima: naive sum of partial sums
        would be wrong; the exp-rescaling fixes it."""
        scores = np.array([[0.0, 0.0, 100.0, 100.0]])
        pmax, psum = partial_softmax_stats(scores, tile_n=2)
        _, row_sum = full_reduce_stats(pmax, psum)
        direct = np.exp(scores - 100.0).sum()
        np.testing.assert_allclose(row_sum, [direct], rtol=1e-12)
        # the unrescaled sum would have been 4.0 (2 per block)
        assert not np.isclose(psum.sum(), direct)

    @given(
        rows=st.integers(1, 8),
        cols=st.integers(1, 200),
        tile=st.sampled_from([16, 64, 128]),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_any_tiling_matches_direct(self, rows, cols, tile):
        rng = np.random.default_rng(rows * 1000 + cols)
        scores = rng.normal(size=(rows, cols)) * 5
        row_max, row_sum = full_reduce_stats(
            *partial_softmax_stats(scores, tile_n=tile)
        )
        np.testing.assert_allclose(row_max, scores.max(axis=1), rtol=1e-12)
        np.testing.assert_allclose(
            row_sum,
            np.exp(scores - scores.max(axis=1, keepdims=True)).sum(axis=1),
            rtol=1e-10,
        )


class TestTransform:
    def test_transform_completes_softmax(self, rng):
        scores = rng.normal(size=(6, 150))
        row_max, row_sum = full_reduce_stats(
            *partial_softmax_stats(scores)
        )
        probs = apply_softmax_transform(scores, row_max, row_sum)
        np.testing.assert_allclose(
            probs, softmax_reference(scores), rtol=1e-12
        )

    def test_shape_mismatch_rejected(self, rng):
        scores = rng.normal(size=(4, 8))
        with pytest.raises(ValueError, match="stat shapes"):
            apply_softmax_transform(scores, np.zeros(3), np.ones(3))


class TestFullReductionKernel:
    def test_reduces_all_units(self, rng):
        partials = [
            partial_softmax_stats(rng.normal(size=(m, m)))
            for m in (20, 35, 50)
        ]
        ctx = ExecutionContext()
        stats = full_reduction_kernel(partials, ctx=ctx)
        assert len(stats) == 3
        assert ctx.kernel_count() == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            full_reduction_kernel([])

    def test_lightweight_relative_to_partials(self):
        """The full reduction touches ~seq/128 fewer elements than the
        score matrix — the basis of the paper's ~2% claim."""
        lens = [512] * 16
        launch = full_reduction_launch(lens, heads=12)
        score_elems = sum(12 * length * length for length in lens)
        assert launch.flops < 0.05 * score_elems

    def test_store_bytes_scale_with_blocks(self):
        short = partial_stats_store_bytes([128], heads=1)
        long = partial_stats_store_bytes([1024], heads=1)
        # 1024 has 8 blocks of 128 -> 8x rows x 8 blocks = 64x
        assert long == pytest.approx(64 * short)

    def test_epilogue_flops_quadratic(self):
        assert partial_stats_flops([256], 1) == pytest.approx(
            4 * partial_stats_flops([128], 1)
        )

    def test_partial_requires_2d(self, rng):
        with pytest.raises(ValueError, match=r"\[m, n\]"):
            partial_softmax_stats(rng.normal(size=(4,)))
