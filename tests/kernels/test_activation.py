"""GELU / add-bias kernels."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import ExecutionContext
from repro.kernels.activation import (
    FAST_GELU_ATOL,
    add_bias,
    add_bias_gelu,
    apply_gelu,
    force_gelu_variant,
    forced_gelu_variant,
    gelu,
    gelu_into,
    gelu_reference,
    gelu_tanh,
    gelu_tanh_into,
    resolve_gelu_variant,
)


class TestGeluMath:
    def test_known_values(self):
        # GELU(0) = 0, GELU(x) -> x for large x, -> 0 for very negative x
        assert gelu_reference(np.array(0.0)) == 0.0
        assert gelu_reference(np.array(10.0)) == pytest.approx(10.0, rel=1e-6)
        assert gelu_reference(np.array(-10.0)) == pytest.approx(0.0, abs=1e-8)

    def test_half_at_zero_slope(self):
        eps = 1e-6
        derivative = (
            gelu_reference(np.array(eps)) - gelu_reference(np.array(-eps))
        ) / (2 * eps)
        assert derivative == pytest.approx(0.5, rel=1e-3)

    def test_tanh_approximation_close(self, rng):
        x = rng.normal(size=1000) * 3
        np.testing.assert_allclose(
            gelu_tanh(x), gelu_reference(x), atol=2e-3
        )

    @given(x=st.floats(-20, 20))
    @settings(max_examples=50, deadline=None)
    def test_monotone_above_minus_one(self, x):
        # GELU is monotone increasing for x >= -0.75 (approx location of min)
        if x >= -0.7:
            a = gelu_reference(np.array(x))
            b = gelu_reference(np.array(x + 0.1))
            assert b >= a

    @given(x=st.floats(-30, 30))
    @settings(max_examples=50, deadline=None)
    def test_bounded_below(self, x):
        assert gelu_reference(np.array(x)) >= -0.17


class TestKernels:
    def test_add_bias(self, rng):
        x = rng.normal(size=(6, 8))
        b = rng.normal(size=8)
        np.testing.assert_allclose(add_bias(x, b), x + b, rtol=1e-12)

    def test_gelu_kernel(self, rng):
        x = rng.normal(size=(6, 8))
        np.testing.assert_allclose(gelu(x), gelu_reference(x), rtol=1e-12)

    def test_fused_equals_sequential(self, rng):
        x = rng.normal(size=(6, 8))
        b = rng.normal(size=8)
        np.testing.assert_allclose(
            add_bias_gelu(x, b), gelu(add_bias(x, b)), rtol=1e-12
        )

    def test_fused_is_one_launch(self, rng):
        x = rng.normal(size=(6, 8))
        b = rng.normal(size=8)
        ctx = ExecutionContext()
        add_bias_gelu(x, b, ctx=ctx)
        assert ctx.kernel_count() == 1

    def test_fused_faster_than_two_kernels(self, rng):
        x = rng.normal(size=(4096, 3072))
        b = rng.normal(size=3072)
        two = ExecutionContext()
        gelu(add_bias(x, b, ctx=two), ctx=two)
        one = ExecutionContext()
        add_bias_gelu(x, b, ctx=one)
        assert one.elapsed_us() < two.elapsed_us()

    def test_bad_bias_shape(self, rng):
        with pytest.raises(ValueError, match="bias"):
            add_bias(rng.normal(size=(4, 8)), rng.normal(size=7))

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            gelu(rng.normal(size=(2, 3, 4)))


class TestGeluVariants:
    def test_tanh_into_bitwise_matches_allocating(self, rng):
        x = rng.normal(size=(64, 32)) * 3
        out = np.empty_like(x)
        tmp = np.empty_like(x)
        gelu_tanh_into(x, out=out, tmp=tmp)
        np.testing.assert_array_equal(out, gelu_tanh(x))

    def test_exact_into_bitwise_matches_allocating(self, rng):
        x = rng.normal(size=(64, 32)) * 3
        out = np.empty_like(x)
        tmp = np.empty_like(x)
        gelu_into(x, out=out, tmp=tmp)
        np.testing.assert_array_equal(out, gelu_reference(x))

    def test_tanh_within_documented_atol(self, rng):
        # FAST_GELU_ATOL is the documented worst case over the reals;
        # a dense sweep through the error curve's maximum must respect it
        x = np.linspace(-8.0, 8.0, 200_001)
        diff = np.abs(gelu_tanh(x) - gelu_reference(x))
        assert 0 < float(diff.max()) <= FAST_GELU_ATOL

    def test_apply_gelu_dispatches_by_variant(self, rng):
        x = rng.normal(size=(8, 16))
        for variant, reference in (
            ("exact", gelu_reference),
            ("tanh", gelu_tanh),
        ):
            out, tmp = np.empty_like(x), np.empty_like(x)
            apply_gelu(x, out=out, tmp=tmp, variant=variant)
            np.testing.assert_array_equal(out, reference(x))

    def test_apply_gelu_allows_out_aliasing_x(self, rng):
        x = rng.normal(size=(8, 16))
        expected = gelu_tanh(x)
        buf = x.copy()
        apply_gelu(buf, out=buf, tmp=np.empty_like(x), variant="tanh")
        np.testing.assert_array_equal(buf, expected)

    def test_force_overrides_and_restores(self):
        assert forced_gelu_variant() is None
        assert resolve_gelu_variant("tanh") == "tanh"
        with force_gelu_variant("exact"):
            assert forced_gelu_variant() == "exact"
            assert resolve_gelu_variant("tanh") == "exact"
        assert forced_gelu_variant() is None
        assert resolve_gelu_variant("tanh") == "tanh"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown GELU variant"):
            resolve_gelu_variant("relu")
        with pytest.raises(ValueError, match="unknown GELU variant"):
            with force_gelu_variant("relu"):
                pass

    def test_add_bias_gelu_variant_numerics_and_launch(self, rng):
        x = rng.normal(size=(6, 8))
        b = rng.normal(size=8)
        exact_ctx, tanh_ctx = ExecutionContext(), ExecutionContext()
        exact = add_bias_gelu(x, b, ctx=exact_ctx, variant="exact")
        fast = add_bias_gelu(x, b, ctx=tanh_ctx, variant="tanh")
        np.testing.assert_array_equal(fast, gelu_tanh(x + b))
        assert float(np.abs(fast - exact).max()) <= FAST_GELU_ATOL
        # variant selection is numeric-plane only: identical launches
        assert [r.launch for r in exact_ctx.records] == [
            r.launch for r in tanh_ctx.records
        ]

    def test_add_bias_gelu_out_matches_allocating_tanh(self, rng):
        x = rng.normal(size=(6, 8))
        b = rng.normal(size=8)
        out, tmp = np.empty_like(x), np.empty_like(x)
        add_bias_gelu(x, b, out=out, tmp=tmp, variant="tanh")
        np.testing.assert_array_equal(
            out, add_bias_gelu(x, b, variant="tanh")
        )
