"""GELU / add-bias kernels."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import ExecutionContext
from repro.kernels.activation import (
    add_bias,
    add_bias_gelu,
    gelu,
    gelu_reference,
    gelu_tanh,
)


class TestGeluMath:
    def test_known_values(self):
        # GELU(0) = 0, GELU(x) -> x for large x, -> 0 for very negative x
        assert gelu_reference(np.array(0.0)) == 0.0
        assert gelu_reference(np.array(10.0)) == pytest.approx(10.0, rel=1e-6)
        assert gelu_reference(np.array(-10.0)) == pytest.approx(0.0, abs=1e-8)

    def test_half_at_zero_slope(self):
        eps = 1e-6
        derivative = (
            gelu_reference(np.array(eps)) - gelu_reference(np.array(-eps))
        ) / (2 * eps)
        assert derivative == pytest.approx(0.5, rel=1e-3)

    def test_tanh_approximation_close(self, rng):
        x = rng.normal(size=1000) * 3
        np.testing.assert_allclose(
            gelu_tanh(x), gelu_reference(x), atol=2e-3
        )

    @given(x=st.floats(-20, 20))
    @settings(max_examples=50, deadline=None)
    def test_monotone_above_minus_one(self, x):
        # GELU is monotone increasing for x >= -0.75 (approx location of min)
        if x >= -0.7:
            a = gelu_reference(np.array(x))
            b = gelu_reference(np.array(x + 0.1))
            assert b >= a

    @given(x=st.floats(-30, 30))
    @settings(max_examples=50, deadline=None)
    def test_bounded_below(self, x):
        assert gelu_reference(np.array(x)) >= -0.17


class TestKernels:
    def test_add_bias(self, rng):
        x = rng.normal(size=(6, 8))
        b = rng.normal(size=8)
        np.testing.assert_allclose(add_bias(x, b), x + b, rtol=1e-12)

    def test_gelu_kernel(self, rng):
        x = rng.normal(size=(6, 8))
        np.testing.assert_allclose(gelu(x), gelu_reference(x), rtol=1e-12)

    def test_fused_equals_sequential(self, rng):
        x = rng.normal(size=(6, 8))
        b = rng.normal(size=8)
        np.testing.assert_allclose(
            add_bias_gelu(x, b), gelu(add_bias(x, b)), rtol=1e-12
        )

    def test_fused_is_one_launch(self, rng):
        x = rng.normal(size=(6, 8))
        b = rng.normal(size=8)
        ctx = ExecutionContext()
        add_bias_gelu(x, b, ctx=ctx)
        assert ctx.kernel_count() == 1

    def test_fused_faster_than_two_kernels(self, rng):
        x = rng.normal(size=(4096, 3072))
        b = rng.normal(size=3072)
        two = ExecutionContext()
        gelu(add_bias(x, b, ctx=two), ctx=two)
        one = ExecutionContext()
        add_bias_gelu(x, b, ctx=one)
        assert one.elapsed_us() < two.elapsed_us()

    def test_bad_bias_shape(self, rng):
        with pytest.raises(ValueError, match="bias"):
            add_bias(rng.normal(size=(4, 8)), rng.normal(size=7))

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            gelu(rng.normal(size=(2, 3, 4)))
