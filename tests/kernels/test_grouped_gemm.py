"""Grouped GEMM: variable-shape numerics and the tile scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import A100_SPEC, ExecutionContext
from repro.kernels.gemm import select_tile
from repro.kernels.grouped_gemm import (
    GemmProblem,
    SchedulerKind,
    _tile_assignment,
    grouped_gemm,
    grouped_gemm_launch,
    simulate_schedule,
)

shape = st.integers(1, 96)


def random_problems(rng, count=6, max_dim=48):
    problems = []
    operands = []
    for _ in range(count):
        m, n, k = rng.integers(1, max_dim, size=3)
        problems.append(GemmProblem(int(m), int(n), int(k)))
        operands.append(
            (rng.normal(size=(m, k)), rng.normal(size=(k, n)))
        )
    return problems, operands


class TestNumerics:
    def test_matches_per_problem_matmul(self, rng):
        _, operands = random_problems(rng)
        outs = grouped_gemm([a for a, _ in operands], [b for _, b in operands])
        for (a, b), out in zip(operands, outs):
            np.testing.assert_allclose(out, a @ b, rtol=1e-12)

    def test_transpose_b(self, rng):
        a_list = [rng.normal(size=(8, 4)), rng.normal(size=(12, 4))]
        b_list = [rng.normal(size=(6, 4)), rng.normal(size=(10, 4))]
        outs = grouped_gemm(a_list, b_list, transpose_b=True)
        for a, b, out in zip(a_list, b_list, outs):
            np.testing.assert_allclose(out, a @ b.T, rtol=1e-12)

    def test_single_problem(self, rng):
        a, b = rng.normal(size=(5, 3)), rng.normal(size=(3, 7))
        (out,) = grouped_gemm([a], [b])
        np.testing.assert_allclose(out, a @ b, rtol=1e-12)

    def test_scheduler_does_not_change_numerics(self, rng):
        _, operands = random_problems(rng)
        a_list = [a for a, _ in operands]
        b_list = [b for _, b in operands]
        per_thread = grouped_gemm(
            a_list, b_list, scheduler=SchedulerKind.PER_THREAD
        )
        prefetch = grouped_gemm(
            a_list, b_list, scheduler=SchedulerKind.WARP_PREFETCH
        )
        for x, y in zip(per_thread, prefetch):
            np.testing.assert_array_equal(x, y)

    @given(
        shapes=st.lists(st.tuples(shape, shape, shape), min_size=1, max_size=8)
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_variable_shapes(self, shapes):
        rng = np.random.default_rng(42)
        a_list = [rng.normal(size=(m, k)) for m, _, k in shapes]
        b_list = [rng.normal(size=(k, n)) for _, n, k in shapes]
        outs = grouped_gemm(a_list, b_list)
        for a, b, out in zip(a_list, b_list, outs):
            np.testing.assert_allclose(out, a @ b, rtol=1e-9, atol=1e-10)


class TestValidation:
    def test_mismatched_operand_counts(self, rng):
        with pytest.raises(ValueError, match="operands"):
            grouped_gemm([rng.normal(size=(4, 4))], [])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            grouped_gemm([], [])

    def test_bad_sub_problem_shapes(self, rng):
        with pytest.raises(ValueError, match="sub-problem"):
            grouped_gemm(
                [rng.normal(size=(4, 4))], [rng.normal(size=(5, 4))]
            )

    def test_problem_validation(self):
        with pytest.raises(ValueError, match="positive"):
            GemmProblem(0, 4, 4)


class TestTileAssignment:
    def test_every_tile_exactly_once(self):
        problems = [GemmProblem(200, 100, 64), GemmProblem(64, 64, 32)]
        tile = select_tile(200, 100)
        tile_problem, tile_k = _tile_assignment(problems, tile)
        # every problem covered by exactly its ceil-div tile count
        for idx, p in enumerate(problems):
            assert (tile_problem == idx).sum() == p.tiles(tile)
        assert len(tile_problem) == len(tile_k)

    def test_round_robin_order(self):
        problems = [GemmProblem(128, 128, 8), GemmProblem(256, 128, 8)]
        tile = select_tile(256, 128)
        tile_problem, _ = _tile_assignment(problems, tile)
        # problem 0's tiles come first (the visitor walks linearly)
        first_zero = np.flatnonzero(tile_problem == 0)
        first_one = np.flatnonzero(tile_problem == 1)
        assert first_zero.max() < first_one.min()


class TestSchedule:
    BERT_PROBLEMS = [
        GemmProblem(m, m, 64) for m in (640, 384, 512, 1024, 768, 896) * 4
    ]

    def test_makespan_at_least_average(self):
        sched = simulate_schedule(self.BERT_PROBLEMS, A100_SPEC)
        avg = sched.compute_makespan_us * sched.load_balance
        assert sched.compute_makespan_us >= avg

    def test_warp_prefetch_fewer_visits(self):
        per_thread = simulate_schedule(
            self.BERT_PROBLEMS, A100_SPEC, scheduler=SchedulerKind.PER_THREAD
        )
        prefetch = simulate_schedule(
            self.BERT_PROBLEMS,
            A100_SPEC,
            scheduler=SchedulerKind.WARP_PREFETCH,
        )
        assert prefetch.visits_per_cta <= per_thread.visits_per_cta
        assert prefetch.visits_per_cta == -(
            -per_thread.visits_per_cta // 32
        )

    def test_warp_prefetch_smaller_makespan(self):
        per_thread = simulate_schedule(
            self.BERT_PROBLEMS, A100_SPEC, scheduler=SchedulerKind.PER_THREAD
        )
        prefetch = simulate_schedule(
            self.BERT_PROBLEMS,
            A100_SPEC,
            scheduler=SchedulerKind.WARP_PREFETCH,
        )
        assert prefetch.makespan_us < per_thread.makespan_us
        # identical compute: the difference is pure scheduler overhead
        assert prefetch.compute_makespan_us == pytest.approx(
            per_thread.compute_makespan_us
        )

    def test_quantisation_waste_bounds(self):
        sched = simulate_schedule(self.BERT_PROBLEMS, A100_SPEC)
        assert 0.0 <= sched.quantisation_waste < 1.0
        assert sched.computed_flops >= sched.useful_flops

    def test_perfectly_tiled_problems_have_no_waste(self):
        problems = [GemmProblem(256, 256, 64)] * 8
        sched = simulate_schedule(problems, A100_SPEC)
        assert sched.quantisation_waste == pytest.approx(0.0)

    def test_ctas_capped_by_tiles(self):
        sched = simulate_schedule([GemmProblem(64, 64, 32)], A100_SPEC)
        assert sched.n_ctas == sched.total_tiles == 1

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            simulate_schedule([], A100_SPEC)


class TestLaunch:
    def test_useful_flops_metered(self):
        problems = [GemmProblem(100, 50, 30), GemmProblem(7, 9, 11)]
        launch = grouped_gemm_launch(problems, A100_SPEC)
        expected = sum(p.flops for p in problems)
        assert launch.flops == pytest.approx(expected)

    def test_extra_flops_and_bytes_added(self):
        problems = [GemmProblem(64, 64, 64)]
        plain = grouped_gemm_launch(problems, A100_SPEC)
        extra = grouped_gemm_launch(
            problems, A100_SPEC, extra_flops=1e6, extra_bytes=1e4
        )
        assert extra.flops == pytest.approx(plain.flops + 1e6)
        assert extra.dram_bytes == pytest.approx(plain.dram_bytes + 1e4)

    def test_scheduler_tag_recorded(self):
        launch = grouped_gemm_launch(
            [GemmProblem(64, 64, 64)],
            A100_SPEC,
            scheduler=SchedulerKind.PER_THREAD,
        )
        assert "scheduler=per_thread" in launch.tags

    def test_launch_time_reflects_scheduler(self, rng):
        problems = TestSchedule.BERT_PROBLEMS
        slow = ExecutionContext()
        slow.launch(
            grouped_gemm_launch(
                problems, A100_SPEC, scheduler=SchedulerKind.PER_THREAD
            )
        )
        fast = ExecutionContext()
        fast.launch(
            grouped_gemm_launch(
                problems, A100_SPEC, scheduler=SchedulerKind.WARP_PREFETCH
            )
        )
        assert fast.elapsed_us() < slow.elapsed_us()
