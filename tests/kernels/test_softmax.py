"""Softmax kernels: numerics, masking, the zero-padding variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import ExecutionContext
from repro.kernels.softmax import (
    MASK_VALUE,
    add_mask,
    masked_softmax,
    scale_scores,
    softmax,
    softmax_reference,
    zeropad_softmax,
    zeropad_softmax_launch,
)

finite_rows = st.lists(
    st.lists(st.floats(-30, 30), min_size=2, max_size=12),
    min_size=1,
    max_size=8,
).filter(lambda rows: len({len(r) for r in rows}) == 1)


class TestReference:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(6, 10))
        np.testing.assert_allclose(
            softmax_reference(x).sum(axis=-1), 1.0, rtol=1e-12
        )

    def test_matches_scipy(self, rng):
        from scipy.special import softmax as scipy_softmax

        x = rng.normal(size=(4, 7))
        np.testing.assert_allclose(
            softmax_reference(x), scipy_softmax(x, axis=-1), rtol=1e-12
        )

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            softmax_reference(x), softmax_reference(x + 100.0), rtol=1e-10
        )

    def test_numerically_stable_for_large_values(self):
        x = np.array([[1000.0, 1000.0, -1000.0]])
        out = softmax_reference(x)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[0, :2], 0.5, rtol=1e-12)

    @given(rows=finite_rows)
    @settings(max_examples=30, deadline=None)
    def test_output_is_probability_distribution(self, rows):
        x = np.asarray(rows, dtype=np.float64)
        out = softmax_reference(x)
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)


class TestKernels:
    def test_softmax_kernel_matches_reference(self, rng):
        x = rng.normal(size=(2, 3, 8))
        np.testing.assert_array_equal(softmax(x), softmax_reference(x))

    def test_scale_scores(self, rng):
        x = rng.normal(size=(2, 4, 4))
        np.testing.assert_allclose(scale_scores(x, 0.125), x * 0.125)

    def test_add_mask_pushes_invalid_down(self, rng):
        x = rng.normal(size=(1, 1, 2, 4))
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])[:, None, None, :]
        out = add_mask(x, mask)
        np.testing.assert_array_equal(out[..., :2], x[..., :2])
        np.testing.assert_allclose(out[..., 2:], x[..., 2:] + MASK_VALUE)

    def test_masked_softmax_suppresses_padding(self, rng):
        x = rng.normal(size=(1, 1, 3, 5))
        mask = np.zeros((1, 1, 1, 5))
        mask[..., :3] = 1.0
        probs = masked_softmax(x, mask)
        assert probs[..., 3:].max() < 1e-4
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-6)

    def test_each_kernel_records_one_launch(self, rng):
        x = rng.normal(size=(2, 4, 8))
        for fn in (
            lambda c: softmax(x, ctx=c),
            lambda c: scale_scores(x, 0.5, ctx=c),
        ):
            ctx = ExecutionContext()
            fn(ctx)
            assert ctx.kernel_count() == 1


class TestZeropadSoftmax:
    def make_scores(self, rng, batch=3, heads=2, max_len=8):
        return rng.normal(size=(batch, heads, max_len, max_len))

    def test_valid_region_matches_reference(self, rng):
        scores = self.make_scores(rng)
        lens = [3, 8, 5]
        out = zeropad_softmax(scores, lens)
        for b, length in enumerate(lens):
            np.testing.assert_allclose(
                out[b, :, :length, :length],
                softmax_reference(scores[b, :, :length, :length]),
                rtol=1e-12,
            )

    def test_padding_region_zeroed(self, rng):
        scores = self.make_scores(rng)
        out = zeropad_softmax(scores, [3, 8, 5])
        assert (out[0, :, 3:, :] == 0).all()
        assert (out[0, :, :, 3:] == 0).all()

    def test_agrees_with_masked_softmax_on_valid_rows(self, rng):
        scores = self.make_scores(rng)
        lens = [4, 6, 8]
        mask = np.zeros((3, 8))
        for b, length in enumerate(lens):
            mask[b, :length] = 1
        dense = masked_softmax(scores, mask[:, None, None, :])
        packed = zeropad_softmax(scores, lens)
        for b, length in enumerate(lens):
            np.testing.assert_allclose(
                packed[b, :, :length, :length],
                dense[b, :, :length, :length],
                rtol=1e-6,
                atol=1e-9,
            )

    def test_traffic_scales_with_valid_tokens(self):
        full = zeropad_softmax_launch([8, 8, 8], heads=2)
        partial = zeropad_softmax_launch([4, 4, 4], heads=2)
        assert partial.dram_bytes < full.dram_bytes
        assert partial.flops == pytest.approx(full.flops / 4)

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError, match="square"):
            zeropad_softmax(rng.normal(size=(1, 1, 4, 5)), [4])

    def test_length_out_of_range(self, rng):
        with pytest.raises(ValueError, match="out of range"):
            zeropad_softmax(rng.normal(size=(1, 1, 4, 4)), [5])

    def test_length_count_mismatch(self, rng):
        with pytest.raises(ValueError, match="lengths"):
            zeropad_softmax(rng.normal(size=(2, 1, 4, 4)), [4])

    def test_3d_input_rejected(self, rng):
        with pytest.raises(ValueError, match=r"\[B, H, S, S\]"):
            zeropad_softmax(rng.normal(size=(2, 4, 4)), [4, 4])
