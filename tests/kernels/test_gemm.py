"""Dense GEMM: numerics, epilogue fusion, cost-model properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import ExecutionContext
from repro.kernels.activation import gelu_reference
from repro.kernels.gemm import (
    gemm,
    gemm_efficiency,
    gemm_flops,
    gemm_launch,
    select_tile,
)


class TestNumerics:
    def test_matches_numpy(self, rng):
        a = rng.normal(size=(17, 23))
        b = rng.normal(size=(23, 9))
        np.testing.assert_allclose(gemm(a, b), a @ b, rtol=1e-12)

    def test_bias_epilogue(self, rng):
        a = rng.normal(size=(8, 5))
        b = rng.normal(size=(5, 6))
        bias = rng.normal(size=6)
        np.testing.assert_allclose(
            gemm(a, b, bias=bias), a @ b + bias, rtol=1e-12
        )

    def test_gelu_epilogue(self, rng):
        a = rng.normal(size=(8, 5))
        b = rng.normal(size=(5, 6))
        np.testing.assert_allclose(
            gemm(a, b, activation="gelu"), gelu_reference(a @ b), rtol=1e-12
        )

    def test_bias_gelu_epilogue_order(self, rng):
        """GELU is applied after the bias add, as in the CUTLASS epilogue."""
        a = rng.normal(size=(8, 5))
        b = rng.normal(size=(5, 6))
        bias = rng.normal(size=6)
        np.testing.assert_allclose(
            gemm(a, b, bias=bias, activation="gelu"),
            gelu_reference(a @ b + bias),
            rtol=1e-12,
        )

    @given(
        m=st.integers(1, 40), n=st.integers(1, 40), k=st.integers(1, 40)
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_shapes(self, m, n, k):
        rng = np.random.default_rng(m * 1000 + n * 10 + k)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        np.testing.assert_allclose(gemm(a, b), a @ b, rtol=1e-10, atol=1e-12)


class TestValidation:
    def test_inner_dim_mismatch(self, rng):
        with pytest.raises(ValueError, match="inner dims"):
            gemm(rng.normal(size=(3, 4)), rng.normal(size=(5, 6)))

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            gemm(rng.normal(size=(3, 4, 5)), rng.normal(size=(5, 6)))

    def test_bad_bias_shape(self, rng):
        with pytest.raises(ValueError, match="bias shape"):
            gemm(
                rng.normal(size=(3, 4)),
                rng.normal(size=(4, 6)),
                bias=rng.normal(size=5),
            )

    def test_unknown_activation(self, rng):
        with pytest.raises(ValueError, match="activation"):
            gemm(
                rng.normal(size=(3, 4)),
                rng.normal(size=(4, 6)),
                activation="relu",
            )


class TestCostModel:
    def test_records_one_launch(self, rng):
        ctx = ExecutionContext()
        gemm(rng.normal(size=(64, 32)), rng.normal(size=(32, 16)), ctx=ctx)
        assert ctx.kernel_count() == 1

    def test_useful_flops_metered(self, rng):
        ctx = ExecutionContext()
        gemm(rng.normal(size=(64, 32)), rng.normal(size=(32, 16)), ctx=ctx)
        assert ctx.total_flops() == pytest.approx(gemm_flops(64, 16, 32))

    def test_fused_epilogue_adds_only_bias_traffic(self, rng):
        a, b = rng.normal(size=(64, 32)), rng.normal(size=(32, 16))
        plain = ExecutionContext()
        gemm(a, b, ctx=plain)
        fused = ExecutionContext()
        gemm(a, b, bias=rng.normal(size=16), activation="gelu", ctx=fused)
        extra = fused.total_dram_bytes() - plain.total_dram_bytes()
        assert extra == pytest.approx(16 * 2)  # the bias vector, fp16

    def test_grid_counts_output_tiles(self):
        launch = gemm_launch(256, 256, 64)
        tile = select_tile(256, 256)
        assert launch.grid == (256 // tile.tile_m) * (256 // tile.tile_n)

    def test_deeper_k_more_efficient(self):
        tile = select_tile(256, 256)
        assert gemm_efficiency(256, 256, 768, tile) > gemm_efficiency(
            256, 256, 64, tile
        )

    def test_tile_quantisation_penalty(self):
        tile = select_tile(256, 256)
        aligned = gemm_efficiency(256, 256, 256, tile)
        ragged = gemm_efficiency(129, 256, 256, tile)  # wastes a tile row
        assert ragged < aligned

    def test_efficiency_in_unit_interval(self):
        for m, n, k in [(1, 1, 1), (128, 128, 64), (4096, 3072, 768)]:
            tile = select_tile(m, n)
            assert 0.0 < gemm_efficiency(m, n, k, tile) <= 1.0

    def test_small_output_selects_small_tile(self):
        assert select_tile(32, 32).tile_m == 32
        assert select_tile(64, 64).tile_m == 64
        assert select_tile(512, 512).tile_m == 128

    def test_invalid_dims_raise(self):
        tile = select_tile(128, 128)
        with pytest.raises(ValueError, match="positive"):
            gemm_efficiency(0, 128, 64, tile)


class TestRowSliceBitwise:
    """A 1-row gemm must be bitwise the matching row of a larger gemm.

    BLAS routes M=1 problems to gemv, whose reduction order differs
    from the dgemm rows every M >= 2 operand gets — which would break
    the packed-tile / per-request-oracle contract for 1-token
    sequences.  The kernel pins M=1 to the gemm path.
    """

    def test_single_row_matches_row_of_big_gemm(self, rng):
        a = rng.normal(size=(5, 96))
        b = rng.normal(size=(96, 64))
        big = gemm(a, b)
        for i in range(a.shape[0]):
            assert np.array_equal(gemm(a[i : i + 1], b), big[i : i + 1])

    def test_single_row_out_path_matches(self, rng):
        a = rng.normal(size=(3, 48))
        b = rng.normal(size=(48, 32))
        big = gemm(a, b)
        out = np.empty((1, 32))
        gemm(a[1:2], b, out=out)
        assert np.array_equal(out, big[1:2])

    def test_single_row_epilogue_matches(self, rng):
        a = rng.normal(size=(4, 40))
        b = rng.normal(size=(40, 24))
        bias = rng.normal(size=24)
        big = gemm(a, b, bias=bias, activation="gelu")
        assert np.array_equal(
            gemm(a[2:3], b, bias=bias, activation="gelu"), big[2:3]
        )

    def test_cost_model_still_prices_one_row(self):
        ctx = ExecutionContext()
        gemm(np.ones((1, 32)), np.ones((32, 16)), ctx=ctx)
        (record,) = ctx.records
        assert record.launch.flops == gemm_flops(1, 16, 32)
