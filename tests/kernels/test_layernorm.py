"""Layernorm kernels: fused == unfused == oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import ExecutionContext
from repro.kernels.layernorm import (
    add_bias_residual,
    add_bias_residual_layernorm,
    add_bias_residual_layernorm_unfused,
    layernorm,
    layernorm_reference,
)


@pytest.fixture()
def ln_inputs(rng):
    rows, cols = 10, 16
    return dict(
        x=rng.normal(size=(rows, cols)),
        bias=rng.normal(size=cols),
        residual=rng.normal(size=(rows, cols)),
        gamma=rng.normal(1.0, 0.1, size=cols),
        beta=rng.normal(size=cols),
    )


class TestReference:
    def test_normalises_rows(self, rng):
        x = rng.normal(5.0, 3.0, size=(8, 32))
        out = layernorm_reference(x, np.ones(32), np.zeros(32))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, rtol=1e-6)

    def test_gamma_beta_affine(self, rng):
        x = rng.normal(size=(4, 8))
        gamma = rng.normal(size=8)
        beta = rng.normal(size=8)
        base = layernorm_reference(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(
            layernorm_reference(x, gamma, beta), base * gamma + beta,
            rtol=1e-9, atol=1e-9,
        )

    def test_constant_row_maps_to_beta(self):
        x = np.full((1, 8), 3.0)
        gamma = np.ones(8)
        beta = np.arange(8.0)
        out = layernorm_reference(x, gamma, beta)
        np.testing.assert_allclose(out[0], beta, atol=1e-3)

    @given(
        rows=st.integers(1, 6),
        cols=st.integers(2, 24),
        shift=st.floats(-100, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_shift_invariance(self, rows, cols, shift):
        rng = np.random.default_rng(rows * 100 + cols)
        x = rng.normal(size=(rows, cols))
        gamma = np.ones(cols)
        beta = np.zeros(cols)
        np.testing.assert_allclose(
            layernorm_reference(x, gamma, beta),
            layernorm_reference(x + shift, gamma, beta),
            rtol=1e-6,
            atol=1e-6,
        )


class TestEquivalence:
    def test_fused_equals_unfused(self, ln_inputs):
        fused = add_bias_residual_layernorm(**ln_inputs)
        unfused = add_bias_residual_layernorm_unfused(**ln_inputs)
        np.testing.assert_allclose(fused, unfused, rtol=1e-12)

    def test_fused_equals_manual_compose(self, ln_inputs):
        manual = layernorm_reference(
            ln_inputs["x"] + ln_inputs["bias"] + ln_inputs["residual"],
            ln_inputs["gamma"],
            ln_inputs["beta"],
        )
        np.testing.assert_allclose(
            add_bias_residual_layernorm(**ln_inputs), manual, rtol=1e-12
        )

    def test_add_bias_residual_numeric(self, ln_inputs):
        out = add_bias_residual(
            ln_inputs["x"], ln_inputs["bias"], ln_inputs["residual"]
        )
        np.testing.assert_allclose(
            out,
            ln_inputs["x"] + ln_inputs["bias"] + ln_inputs["residual"],
            rtol=1e-12,
        )


class TestCostModel:
    def test_fused_is_one_launch_unfused_is_two(self, ln_inputs):
        ctx = ExecutionContext()
        add_bias_residual_layernorm(**ln_inputs, ctx=ctx)
        assert ctx.kernel_count() == 1

        ctx = ExecutionContext()
        add_bias_residual_layernorm_unfused(**ln_inputs, ctx=ctx)
        assert ctx.kernel_count() == 2

    def test_fused_moves_fewer_bytes(self, ln_inputs):
        fused = ExecutionContext()
        add_bias_residual_layernorm(**ln_inputs, ctx=fused)
        unfused = ExecutionContext()
        add_bias_residual_layernorm_unfused(**ln_inputs, ctx=unfused)
        assert fused.total_dram_bytes() < unfused.total_dram_bytes()

    def test_fused_is_faster(self, rng):
        rows, cols = 4096, 768
        args = dict(
            x=rng.normal(size=(rows, cols)),
            bias=rng.normal(size=cols),
            residual=rng.normal(size=(rows, cols)),
            gamma=np.ones(cols),
            beta=np.zeros(cols),
        )
        fused = ExecutionContext()
        add_bias_residual_layernorm(**args, ctx=fused)
        unfused = ExecutionContext()
        add_bias_residual_layernorm_unfused(**args, ctx=unfused)
        assert fused.elapsed_us() < unfused.elapsed_us()


class TestValidation:
    def test_shape_mismatch_residual(self, ln_inputs):
        bad = dict(ln_inputs, residual=ln_inputs["residual"][:-1])
        with pytest.raises(ValueError, match="residual"):
            add_bias_residual_layernorm(**bad)

    def test_bad_bias(self, ln_inputs):
        bad = dict(ln_inputs, bias=np.zeros(3))
        with pytest.raises(ValueError, match="bias"):
            add_bias_residual_layernorm(**bad)

    def test_bad_gamma(self, ln_inputs):
        bad = dict(ln_inputs, gamma=np.ones(3))
        with pytest.raises(ValueError, match="gamma"):
            add_bias_residual_layernorm(**bad)

    def test_layernorm_requires_2d(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            layernorm(rng.normal(size=(2, 3, 4)), np.ones(4), np.zeros(4))
