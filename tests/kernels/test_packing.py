"""Pack/unpack gather-scatter kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import ExecutionContext
from repro.kernels.packing import pack_tokens, unpack_tokens


def make_gather(lens, max_len):
    idx = []
    for b, length in enumerate(lens):
        idx.extend(b * max_len + i for i in range(length))
    return np.asarray(idx, dtype=np.int64)


class TestRoundTrip:
    def test_pack_selects_valid_rows(self, rng):
        x = rng.normal(size=(12, 4))  # 3 sentences x 4 positions
        gather = make_gather([2, 4, 1], 4)
        packed = pack_tokens(x, gather)
        np.testing.assert_array_equal(packed, x[gather])

    def test_unpack_zero_fills(self, rng):
        packed = rng.normal(size=(5, 4))
        gather = make_gather([2, 3], 4)
        out = unpack_tokens(packed, gather, padded_rows=8)
        np.testing.assert_array_equal(out[gather], packed)
        padding = np.setdiff1d(np.arange(8), gather)
        assert (out[padding] == 0).all()

    def test_unpack_then_pack_is_identity(self, rng):
        packed = rng.normal(size=(7, 3))
        gather = make_gather([3, 4], 8)
        out = pack_tokens(unpack_tokens(packed, gather, 16), gather)
        np.testing.assert_array_equal(out, packed)

    @given(
        lens=st.lists(st.integers(1, 8), min_size=1, max_size=6),
        hidden=st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, lens, hidden):
        rng = np.random.default_rng(sum(lens) * 100 + hidden)
        max_len = max(lens)
        gather = make_gather(lens, max_len)
        x = rng.normal(size=(len(lens) * max_len, hidden))
        packed = pack_tokens(x, gather)
        restored = unpack_tokens(packed, gather, len(lens) * max_len)
        np.testing.assert_array_equal(restored[gather], x[gather])
        np.testing.assert_array_equal(pack_tokens(restored, gather), packed)


class TestCostModel:
    def test_pack_traffic_scales_with_valid_tokens(self, rng):
        x = rng.normal(size=(100, 8))
        small = ExecutionContext()
        pack_tokens(x, np.arange(10), ctx=small)
        large = ExecutionContext()
        pack_tokens(x, np.arange(80), ctx=large)
        assert small.total_dram_bytes() < large.total_dram_bytes()

    def test_unpack_pays_for_padded_rows(self, rng):
        """The scatter writes the whole padded tensor — why the paper
        fuses unpack into other kernels rather than running it alone."""
        packed = rng.normal(size=(10, 8))
        gather = np.arange(10)
        narrow = ExecutionContext()
        unpack_tokens(packed, gather, padded_rows=20, ctx=narrow)
        wide = ExecutionContext()
        unpack_tokens(packed, gather, padded_rows=200, ctx=wide)
        assert wide.total_dram_bytes() > narrow.total_dram_bytes()


class TestValidation:
    def test_out_of_range_gather(self, rng):
        with pytest.raises(ValueError, match="out of range"):
            pack_tokens(rng.normal(size=(4, 2)), np.array([0, 5]))

    def test_negative_gather(self, rng):
        with pytest.raises(ValueError, match="out of range"):
            pack_tokens(rng.normal(size=(4, 2)), np.array([-1, 0]))

    def test_empty_gather(self, rng):
        with pytest.raises(ValueError, match="at least one"):
            pack_tokens(rng.normal(size=(4, 2)), np.array([], dtype=np.int64))

    def test_unpack_count_mismatch(self, rng):
        with pytest.raises(ValueError, match="indices"):
            unpack_tokens(rng.normal(size=(3, 2)), np.array([0, 1]), 4)

    def test_pack_requires_2d(self, rng):
        with pytest.raises(ValueError, match=r"\[rows, H\]"):
            pack_tokens(rng.normal(size=(4,)), np.array([0]))
