"""Tests for the repro.observe attribution layer."""
