"""Tail forensics: p99-vs-p50 cohort decomposition."""

import pytest

from repro.core.config import BertConfig
from repro.observe import CriticalPathReport, tail_forensics
from repro.serving import FaultSpec, ServingRuntime
from repro.telemetry import SloPolicy, SloReport, Telemetry
from repro.workloads.batching import ContinuousBatcher
from repro.workloads.serving import make_trace

CONFIG = BertConfig(num_heads=4, head_size=16, num_layers=2)


def observed(num_requests=32, seed=5):
    tel = Telemetry()
    runtime = ServingRuntime(
        CONFIG,
        batcher=ContinuousBatcher(token_budget=1024),
        faults=FaultSpec(
            launch_failure_rate=0.06,
            transient_oom_rate=0.04,
            target_prefixes=("fused_mha", "fmha_"),
        ),
        seed=11,
        telemetry=tel,
    )
    runtime.run(
        make_trace(num_requests, 96, mean_interarrival_us=250.0, seed=seed)
    )
    return tel, CriticalPathReport.from_telemetry(tel)


@pytest.fixture(scope="module")
def forensics():
    tel, cp = observed()
    tail = tail_forensics(cp)
    assert tail is not None
    return tel, cp, tail


class TestCohorts:
    def test_p99_cohort_is_slower(self, forensics):
        _, _, tail = forensics
        assert tail.p99.mean_latency_us >= tail.p50.mean_latency_us
        assert tail.p99_latency_us >= tail.p50_latency_us
        assert tail.p50.count >= 1 and tail.p99.count >= 1

    def test_cohort_buckets_are_mean_per_request(self, forensics):
        _, cp, tail = forensics
        served = cp.served()
        lo = [p for p in served if p.latency_us <= tail.p50_latency_us]
        queue = sum(
            p.bucket_totals().get("queue", 0.0) for p in lo
        ) / len(lo)
        assert tail.p50.buckets.get("queue", 0.0) == pytest.approx(queue)

    def test_dominant_bucket_has_largest_absolute_growth(self, forensics):
        _, _, tail = forensics
        dominant = tail.dominant_bucket()
        assert dominant is not None
        growth = (
            tail.p99.buckets.get(dominant, 0.0)
            - tail.p50.buckets.get(dominant, 0.0)
        )
        for bucket, hi in tail.p99.buckets.items():
            assert growth >= hi - tail.p50.buckets.get(bucket, 0.0) - 1e-9

    def test_inflation_none_for_untouched_bucket(self, forensics):
        _, _, tail = forensics
        assert tail.inflation("collective") is None


class TestDegenerate:
    def test_single_served_request_has_no_tail(self):
        _, cp = observed(num_requests=1)
        assert tail_forensics(cp) is None

    def test_unknown_tenant_has_no_tail(self, forensics):
        _, cp, _ = forensics
        assert tail_forensics(cp, tenant="nobody") is None


class TestSloIntegration:
    def test_with_tail_renders_and_keeps_equality(self, forensics):
        tel, _, tail = forensics
        report = SloReport.from_registry(tel.metrics, SloPolicy())
        tailed = report.with_tail(tail)
        assert tailed == report  # tail excluded from comparisons
        text = tailed.render_text()
        assert "tail: p99 cohort" in text
        assert "p99 requests spend" in text
        assert "tail:" not in report.render_text()

    def test_to_dict_serialisable(self, forensics):
        import json

        _, _, tail = forensics
        payload = json.loads(json.dumps(tail.to_dict()))
        assert payload["p50"]["count"] >= 1
        assert payload["dominant_bucket"] == tail.dominant_bucket()
