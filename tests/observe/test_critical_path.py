"""Critical-path attribution: sum-checks, slack, buckets, batches."""

import pytest

from repro.core.config import BertConfig
from repro.observe import BUCKETS, CriticalPathReport, bucket_of_category
from repro.serving import (
    DegradationLadder,
    FaultSpec,
    NO_FAULTS,
    ServingRuntime,
)
from repro.telemetry import Telemetry
from repro.workloads.batching import ContinuousBatcher, TimeoutBatcher
from repro.workloads.serving import make_trace

CONFIG = BertConfig(num_heads=4, head_size=16, num_layers=2)
CHAOS = FaultSpec(
    launch_failure_rate=0.06,
    transient_oom_rate=0.04,
    target_prefixes=("fused_mha", "fmha_"),
)
EPS = 1e-6


def observed_replay(faults=CHAOS, *, batcher=None, sharding=None, seed=11):
    tel = Telemetry()
    runtime = ServingRuntime(
        CONFIG,
        batcher=(
            batcher
            if batcher is not None
            else ContinuousBatcher(token_budget=1024)
        ),
        ladder=DegradationLadder(
            trip_threshold=2, window_us=20_000.0, cooldown_us=15_000.0
        ),
        faults=faults,
        seed=seed,
        telemetry=tel,
        sharding=sharding,
    )
    report = runtime.run(
        make_trace(32, 96, mean_interarrival_us=250.0, seed=5)
    )
    return report, CriticalPathReport.from_telemetry(tel)


@pytest.fixture(scope="module")
def chaos_pair():
    return observed_replay()


class TestBucketMap:
    def test_known_categories(self):
        assert bucket_of_category("gemm0") == "gemm"
        assert bucket_of_category("decode_gemm") == "gemm"
        assert bucket_of_category("attention") == "attention"
        assert bucket_of_category("decode_attention") == "attention"
        assert bucket_of_category("packing") == "pack"
        assert bucket_of_category("collective") == "collective"

    def test_unknown_falls_to_other(self):
        assert bucket_of_category("layernorm0") == "other"
        assert bucket_of_category("kv_swap") == "other"

    def test_every_bucket_is_declared(self):
        for cat in ("gemm1", "attention", "packing", "collective", "probe"):
            assert bucket_of_category(cat) in BUCKETS


class TestSumCheck:
    def test_every_request_has_a_path(self, chaos_pair):
        report, cp = chaos_pair
        assert {p.request_id for p in cp.requests} == {
            o.request_id for o in report.outcomes
        }

    def test_served_paths_tile_latency_exactly(self, chaos_pair):
        """Queue + attempts + backoffs tile [arrival, settle]: the path
        equals the served latency even through retries, never exceeds
        it otherwise."""
        report, cp = chaos_pair
        latency = {o.request_id: o.latency_us for o in report.outcomes}
        outcome = {o.request_id: o.outcome.value for o in report.outcomes}
        checked_retried = 0
        for path in cp.requests:
            if outcome[path.request_id] != "served":
                continue
            assert path.path_us <= latency[path.request_id] + EPS
            if path.decomposed:
                assert path.path_us == pytest.approx(
                    latency[path.request_id], abs=EPS
                )
            if path.retries:
                checked_retried += 1
        assert checked_retried > 0  # chaos actually exercised retries

    def test_bucket_totals_match_path(self, chaos_pair):
        _, cp = chaos_pair
        for path in cp.requests:
            assert sum(path.bucket_totals().values()) == pytest.approx(
                path.path_us
            )
            assert all(v >= 0 for v in path.bucket_totals().values())

    def test_slack_nonnegative(self, chaos_pair):
        _, cp = chaos_pair
        for path in cp.requests:
            for edge in path.edges:
                assert edge.slack_us >= -EPS


class TestAttribution:
    def test_chaos_run_pays_retry_penalty(self, chaos_pair):
        _, cp = chaos_pair
        totals = cp.totals()
        assert totals.get("retry-penalty", 0.0) > 0.0
        assert totals.get("queue", 0.0) > 0.0
        assert totals.get("gemm", 0.0) > 0.0

    def test_clean_run_pays_no_penalties(self):
        _, cp = observed_replay(NO_FAULTS)
        totals = cp.totals()
        assert totals.get("retry-penalty", 0.0) == 0.0
        assert totals.get("ladder-penalty", 0.0) == 0.0

    def test_degraded_run_pays_ladder_penalty(self, chaos_pair):
        report, cp = chaos_pair
        if not report.transitions:
            pytest.skip("chaos seed produced no degradation")
        assert cp.totals().get("ladder-penalty", 0.0) > 0.0

    def test_sharded_run_attributes_per_device(self):
        from repro.serving.sharded import ShardConfig

        _, cp = observed_replay(
            NO_FAULTS, sharding=ShardConfig(devices=2, mode="dp")
        )
        assert len(cp.device_buckets) == 2
        assert set(cp.device_buckets) == {0, 1}


class TestBatches:
    def test_batches_cover_dispatches(self, chaos_pair):
        _, cp = chaos_pair
        assert cp.batches
        for batch in cp.batches:
            assert batch.request_ids
            assert batch.end_us >= batch.start_us

    def test_member_slack_of_critical_member_is_zero(self, chaos_pair):
        _, cp = chaos_pair
        for batch in cp.batches:
            if batch.critical_request_id is None:
                continue
            assert (
                batch.member_slack_us[batch.critical_request_id]
                == pytest.approx(0.0, abs=EPS)
            )
            assert all(
                slack >= -EPS for slack in batch.member_slack_us.values()
            )


class TestRendering:
    def test_render_text_mentions_buckets_and_requests(self, chaos_pair):
        _, cp = chaos_pair
        text = cp.render_text(top=3)
        assert "critical path" in text
        assert "queue" in text
        assert "retry-penalty" in text

    def test_to_json_roundtrips_through_stdlib(self, chaos_pair):
        import json

        _, cp = chaos_pair
        payload = json.loads(json.dumps(cp.to_json()))
        assert payload["requests"]
        assert payload["buckets"]
        assert payload["batches"]

    def test_critical_request_is_slowest_served(self, chaos_pair):
        report, cp = chaos_pair
        slowest = max(
            (o for o in report.outcomes if o.latency_us is not None),
            key=lambda o: o.latency_us,
        )
        assert cp.critical_request().request_id == slowest.request_id


class TestGenerationFallback:
    def test_decode_runs_get_undecomposed_paths(self):
        from repro.serving.generation import GenerationRuntime
        from repro.workloads.serving import make_generation_trace

        tel = Telemetry()
        runtime = GenerationRuntime(
            CONFIG,
            seed=3,
            compute_outputs=False,
            telemetry=tel,
        )
        report = runtime.run(
            make_generation_trace(6, 64, decode_tokens=4, seed=3)
        )
        cp = CriticalPathReport.from_telemetry(tel)
        assert {p.request_id for p in cp.requests} == {
            o.request_id for o in report.outcomes
        }
        latency = {
            o.request_id: o.latency_us
            for o in report.outcomes
            if o.latency_us is not None
        }
        for path in cp.requests:
            if path.request_id in latency:
                assert not path.decomposed
                assert path.path_us <= latency[path.request_id] + EPS


class TestChromeTraceLane:
    def test_trace_gains_critical_lane_only_when_asked(self, chaos_pair):
        from repro.gpusim.trace import telemetry_chrome_trace

        report, cp = chaos_pair
        tel = Telemetry()
        runtime = ServingRuntime(
            CONFIG,
            batcher=ContinuousBatcher(token_budget=1024),
            ladder=DegradationLadder(
                trip_threshold=2, window_us=20_000.0, cooldown_us=15_000.0
            ),
            faults=CHAOS,
            seed=11,
            telemetry=tel,
        )
        runtime.run(make_trace(32, 96, mean_interarrival_us=250.0, seed=5))
        plain = telemetry_chrome_trace(tel)
        fresh_cp = CriticalPathReport.from_telemetry(tel)
        lane = telemetry_chrome_trace(
            tel, critical_path=fresh_cp.critical_request()
        )
        # None emits the legacy layout byte for byte
        assert plain == telemetry_chrome_trace(tel, critical_path=None)
        crit = [
            e
            for e in lane["traceEvents"]
            if e.get("cat") == "critical-path"
        ]
        assert len(crit) == len(fresh_cp.critical_request().edges)
        names = {
            e["args"]["name"]
            for e in lane["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert "critical path" in names
