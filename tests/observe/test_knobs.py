"""Policy-knob sensitivity sweeps and their ranking."""

import pytest

from repro.observe import (
    KNOB_NAMES,
    KnobConfig,
    format_knob_table,
    knob_sweep,
    sweep_knobs,
)


class TestMechanics:
    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="not a known knob"):
            knob_sweep("warp_size")

    def test_all_knobs_enumerable(self):
        assert "token_budget" in KNOB_NAMES
        assert "head_timeout_us" in KNOB_NAMES
        assert "decode_priority" in KNOB_NAMES
        assert "tp_degree" in KNOB_NAMES and "dp_degree" in KNOB_NAMES

    def test_integral_knob_sweeps_integer_values(self):
        swept = knob_sweep(
            "token_budget", KnobConfig.quick(), scales=(0.5, 1.0)
        )
        for point in swept.result.points:
            assert point.value == int(point.value)

    def test_single_point_sweep_is_degenerate_but_valid(self):
        swept = knob_sweep("token_budget", KnobConfig.quick(), scales=(1.0,))
        lo, hi = swept.result.metric_range
        assert lo == hi
        assert swept.max_relative_change == pytest.approx(0.0)

    def test_sweep_is_deterministic(self):
        a = knob_sweep("token_budget", KnobConfig.quick(), scales=(0.5, 1.0))
        b = knob_sweep("token_budget", KnobConfig.quick(), scales=(0.5, 1.0))
        assert a == b


class TestRanking:
    def test_token_budget_outranks_head_timeout_on_standard_shape(self):
        """The PR-4 measured effect: under saturated steady-state
        arrivals the budget sets the dispatch tile directly while the
        head timeout is a rarely-binding backstop."""
        swept = sweep_knobs(
            KnobConfig(), knobs=("head_timeout_us", "token_budget")
        )
        assert [s.knob for s in swept] == ["token_budget", "head_timeout_us"]
        assert swept[0].max_relative_change > swept[1].max_relative_change

    def test_ranked_descending(self):
        swept = sweep_knobs(
            KnobConfig.quick(),
            knobs=("token_budget", "head_timeout_us", "dp_degree"),
        )
        changes = [s.max_relative_change for s in swept]
        assert changes == sorted(changes, reverse=True)


class TestRendering:
    def test_table_lists_knobs_and_winner(self):
        swept = sweep_knobs(
            KnobConfig.quick(), knobs=("token_budget", "head_timeout_us")
        )
        table = format_knob_table(swept)
        assert "knob sensitivity" in table
        assert "token_budget" in table
        assert "most sensitive:" in table

    def test_to_dict_serialisable(self):
        import json

        swept = knob_sweep("dp_degree", KnobConfig.quick())
        payload = json.loads(json.dumps(swept.to_dict()))
        assert payload["knob"] == "dp_degree"
        assert len(payload["points"]) == 3
