"""Bench-history records and the noise-aware baseline gate."""

import json

import pytest

from repro.observe.history import (
    SCHEMA_VERSION,
    append_record,
    baseline_gate,
    load_history,
    record_from_result,
)


def fake_result(modelled_us=1000.0, wall_us=50_000.0, speedup=1.5, **over):
    config = {
        "batch": 4,
        "max_seq_len": 64,
        "alpha": 0.6,
        "layers": 2,
        "preset": "fused MHA",
        "serve_requests": 12,
        "devices": 2,
        "shard": "dp",
        "host": "x86_64",
        "python": "3.11",
        "numpy": "2.0",
    }
    config.update(over.pop("config", {}))
    result = {
        "config": config,
        "modelled_us": modelled_us,
        "wall_us": wall_us,
        "speedup_vs_reference": speedup,
        "sections": {
            "continuous_serving": {
                "speedup_vs_reference": 1.4,
                "continuous": {
                    "us_per_token": 2.0,
                    "steady_hit_rate": 1.0,
                },
            },
        },
    }
    result.update(over)
    return result


def record(**kw):
    return record_from_result(fake_result(**kw), git_sha="abc1234")


class TestRecord:
    def test_record_carries_fingerprint_and_metrics(self):
        rec = record()
        assert rec["schema"] == SCHEMA_VERSION
        assert rec["git_sha"] == "abc1234"
        assert rec["shape"]["max_seq_len"] == 64
        assert rec["env"]["python"] == "3.11"
        assert rec["metrics"]["modelled_us"] == 1000.0
        assert (
            rec["metrics"][
                "sections/continuous_serving/continuous/us_per_token"
            ]
            == 2.0
        )

    def test_missing_sections_simply_absent(self):
        rec = record()
        assert "sections/decode_serving/mixed/us_per_token" not in (
            rec["metrics"]
        )


class TestAppendLoad:
    def test_append_numbers_records_and_load_orders_them(self, tmp_path):
        first = append_record(tmp_path, record(modelled_us=1.0))
        second = append_record(tmp_path, record(modelled_us=2.0))
        assert first.name == "record-0000.json"
        assert second.name == "record-0001.json"
        loaded = load_history(tmp_path)
        assert [r["metrics"]["modelled_us"] for r in loaded] == [1.0, 2.0]

    def test_append_never_overwrites(self, tmp_path):
        append_record(tmp_path, record())
        append_record(tmp_path, record())
        names = sorted(p.name for p in tmp_path.glob("record-*.json"))
        assert names == ["record-0000.json", "record-0001.json"]

    def test_load_missing_directory_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope") == []


class TestGate:
    def history(self, n=3, **kw):
        return [record(**kw) for _ in range(n)]

    def test_same_seed_rerun_passes_clean(self):
        gate = baseline_gate(record(), self.history())
        assert gate.passed
        assert not gate.warnings
        assert gate.baseline_count == 3

    def test_no_history_passes_vacuously(self):
        gate = baseline_gate(record(), [])
        assert gate.passed
        assert "vacuously" in gate.note

    def test_shape_mismatch_never_gated(self):
        other_shape = [
            record(config={"max_seq_len": 256}) for _ in range(3)
        ]
        gate = baseline_gate(record(), other_shape)
        assert gate.passed
        assert gate.baseline_count == 0

    def test_hard_regression_fails(self):
        # modelled µs is deterministic: +10% over a flat history is a
        # code change, and a "lower is better" move in the bad direction
        gate = baseline_gate(
            record(modelled_us=1100.0), self.history()
        )
        assert not gate.passed
        assert any(v.path == "modelled_us" for v in gate.failures)

    def test_hard_improvement_passes(self):
        gate = baseline_gate(record(modelled_us=900.0), self.history())
        assert gate.passed

    def test_soft_regression_only_warns(self):
        gate = baseline_gate(
            record(wall_us=500_000.0, speedup=0.5), self.history()
        )
        assert gate.passed
        warned = {v.path for v in gate.warnings}
        assert "wall_us" in warned
        assert "speedup_vs_reference" in warned

    def test_mad_band_absorbs_history_noise(self):
        # noisy-but-stationary history widens the band: a value inside
        # 3 * 1.4826 * MAD of the median is not a regression
        noisy = [
            record(modelled_us=us)
            for us in (950.0, 1000.0, 1050.0, 980.0, 1020.0)
        ]
        gate = baseline_gate(record(modelled_us=1080.0), noisy)
        assert all(
            v.status == "ok" for v in gate.verdicts if v.path == "modelled_us"
        )

    def test_last_k_window(self):
        old_bad = [record(modelled_us=10_000.0) for _ in range(4)]
        recent = [record(modelled_us=1000.0) for _ in range(5)]
        gate = baseline_gate(record(), old_bad + recent, k=5)
        assert gate.passed
        assert gate.baseline_count == 5

    def test_render_text_names_the_verdicts(self):
        gate = baseline_gate(
            record(modelled_us=1100.0), self.history()
        )
        text = gate.render_text()
        assert "FAIL modelled_us" in text
        assert "baseline gate: FAIL" in text


class TestSeededHistory:
    def test_committed_record_zero_gates_the_committed_snapshot(self):
        """The seeded record 0 must accept the very snapshot it was
        distilled from — the trajectory starts consistent."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        history = load_history(root / "benchmarks" / "history")
        assert history, "benchmarks/history/ should be seeded"
        snapshot = json.loads((root / "BENCH_wallclock.json").read_text())
        fresh = record_from_result(snapshot)
        gate = baseline_gate(fresh, history)
        assert gate.baseline_count >= 1
        assert gate.passed
        assert not gate.warnings
