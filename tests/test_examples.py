"""Smoke tests: every example script must run cleanly end to end.

Examples are part of the public surface; these tests execute each one in
a subprocess (the same way a user would) and check for a zero exit and
the expected headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": "speedup",
    "kernel_fusion_tour.py": "Fig 9",
    "attention_scaling.py": "grouped",
    "serving_variable_length.py": "ByteTransformer",
    "batching_policies.py": "fifo",
    "seq2seq_decoder.py": "oracle",
    "serving_chaos.py": "bit-identical to the clean replay: True",
    "loadtest.py": "no silent loss: True",
}


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("name,expected", sorted(CASES.items()))
def test_example_runs(name, expected):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout


def test_reproduce_paper_single_experiment():
    result = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES_DIR / "reproduce_paper.py"),
            "table2",
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Table II" in result.stdout


def test_reproduce_paper_rejects_unknown():
    result = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES_DIR / "reproduce_paper.py"),
            "nonsense",
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode != 0
