"""Degradation ladder: trip-down, cool-down recovery, transition log."""

import pytest

from repro.core.engine import LOOPED, VECTORIZED
from repro.serving.degradation import (
    DEFAULT_LEVELS,
    DegradationLadder,
    DegradationLevel,
)


def ladder(**kwargs):
    defaults = dict(trip_threshold=2, window_us=1000.0, cooldown_us=5000.0)
    defaults.update(kwargs)
    return DegradationLadder(**defaults)


class TestLevels:
    def test_default_ladder_shape(self):
        assert DEFAULT_LEVELS[0].engine == VECTORIZED
        assert DEFAULT_LEVELS[0].mha_path == "fused"
        assert DEFAULT_LEVELS[-1].mha_path == "cublas"
        assert all(l.engine == LOOPED for l in DEFAULT_LEVELS[1:])

    def test_level_validation(self):
        with pytest.raises(ValueError, match="engine"):
            DegradationLevel("x", "turbo", "fused")
        with pytest.raises(ValueError, match="MHA path"):
            DegradationLevel("x", LOOPED, "magic")


class TestLadder:
    def test_starts_at_top(self):
        l = ladder()
        assert l.at_top
        assert l.level is DEFAULT_LEVELS[0]

    def test_trips_down_after_threshold_incidents_in_window(self):
        l = ladder(trip_threshold=3)
        l.record_fault(0.0)
        l.record_fault(100.0)
        assert l.at_top
        l.record_fault(200.0)
        assert l.level.name == DEFAULT_LEVELS[1].name
        assert l.transitions[0].reason == "fault-pressure"

    def test_stale_incidents_fall_out_of_window(self):
        l = ladder(trip_threshold=2, window_us=1000.0)
        l.record_fault(0.0)
        l.record_fault(5000.0)  # first fault long expired
        assert l.at_top

    def test_deadline_misses_also_trip(self):
        l = ladder()
        l.record_deadline_miss(0.0)
        l.record_deadline_miss(10.0)
        assert not l.at_top
        assert l.transitions[0].reason == "deadline-miss-pressure"

    def test_clamps_at_bottom(self):
        l = ladder(trip_threshold=1)
        for t in range(10):
            l.record_fault(float(t))
        assert l.level is DEFAULT_LEVELS[-1]
        assert len(l.transitions) == len(DEFAULT_LEVELS) - 1

    def test_recovers_one_rung_after_quiet_cooldown(self):
        l = ladder(trip_threshold=1, cooldown_us=5000.0)
        l.record_fault(0.0)
        assert not l.at_top
        l.record_success(1000.0)  # still cooling down
        assert not l.at_top
        l.record_success(6000.0)
        assert l.at_top
        assert l.transitions[-1].reason == "recovered"

    def test_recovery_is_rate_limited(self):
        l = ladder(trip_threshold=1, cooldown_us=5000.0)
        l.record_fault(0.0)
        l.record_fault(1.0)  # two rungs down
        l.record_success(6000.0)
        l.record_success(6001.0)  # second climb needs another cooldown
        assert l.level.name == DEFAULT_LEVELS[1].name
        l.record_success(12_000.0)
        assert l.at_top

    def test_incident_during_cooldown_blocks_recovery(self):
        l = ladder(trip_threshold=1, window_us=10_000.0, cooldown_us=5000.0)
        l.record_fault(0.0)
        l.record_fault(5500.0)  # re-trips (and extends) the cooldown
        l.record_success(6000.0)
        assert l.level.name != DEFAULT_LEVELS[0].name

    def test_reset(self):
        l = ladder(trip_threshold=1)
        l.record_fault(0.0)
        l.reset()
        assert l.at_top
        assert l.transitions == []

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            DegradationLadder(levels=())
        with pytest.raises(ValueError, match="trip_threshold"):
            DegradationLadder(trip_threshold=0)
        with pytest.raises(ValueError, match="positive"):
            DegradationLadder(window_us=0.0)
