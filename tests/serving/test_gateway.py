"""Gateway invariants: fairness, rate limiting, precedence, conservation."""

import numpy as np
import pytest

from repro.serving.gateway import (
    AdmissionGateway,
    QosClass,
    REASON_QUEUE_OVERFLOW,
    REASON_RATE_LIMIT,
    REASON_UNKNOWN_TENANT,
    TenantPolicy,
    TokenBucket,
)
from repro.workloads.serving import Request, ServingTrace


def make_trace(rows, max_seq_len=256):
    """Trace from (arrival_us, seq_len, tenant[, deadline]) tuples."""
    requests = tuple(
        Request(
            request_id=i,
            arrival_us=float(row[0]),
            seq_len=int(row[1]),
            deadline_us=row[3] if len(row) > 3 else None,
            tenant=row[2],
        )
        for i, row in enumerate(sorted(rows, key=lambda r: r[0]))
    )
    return ServingTrace(requests=requests, max_seq_len=max_seq_len)


def flood(tenant, *, rate_us, seq_len, start=0.0, end=100_000.0):
    """A deterministic dense arrival stream for one tenant."""
    t, rows = start, []
    while t < end:
        rows.append((t, seq_len, tenant))
        t += rate_us
    return rows


class TestTokenBucket:
    def test_refills_continuously_and_is_all_or_nothing(self):
        bucket = TokenBucket(rate_per_us=1.0, burst=100.0)
        assert bucket.take(0.0, 100.0)
        assert not bucket.take(0.0, 1.0)
        assert not bucket.take(49.0, 50.0)  # only 49 back so far
        assert bucket.take(50.0, 50.0)

    def test_retry_after_reports_exact_wait(self):
        bucket = TokenBucket(rate_per_us=2.0, burst=100.0)
        assert bucket.take(0.0, 100.0)
        assert bucket.retry_after_us(0.0, 60.0) == pytest.approx(30.0)
        assert bucket.retry_after_us(10.0, 10.0) == 0.0

    def test_oversized_request_never_fits(self):
        bucket = TokenBucket(rate_per_us=1.0, burst=64.0)
        assert not bucket.take(1e9, 65.0)
        assert bucket.retry_after_us(1e9, 65.0) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            TokenBucket(0.0, 10.0)
        with pytest.raises(ValueError, match=">= 0"):
            TokenBucket(1.0, 10.0).take(0.0, -1.0)


class TestTenantPolicy:
    def test_default_burst_is_one_second_of_rate(self):
        bucket = TenantPolicy("t", rate_tokens_per_s=5_000.0).make_bucket()
        assert bucket.burst == 5_000.0
        assert bucket.rate_per_us == pytest.approx(5e-3)

    def test_no_rate_limit_means_no_bucket(self):
        assert TenantPolicy("t").make_bucket() is None

    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            TenantPolicy("")
        with pytest.raises(ValueError, match="weight"):
            TenantPolicy("t", weight=0.0)
        with pytest.raises(ValueError, match="slo_target"):
            TenantPolicy("t", slo_target=0.0)


class TestGatewayBasics:
    def test_needs_service_rate(self):
        gw = AdmissionGateway([TenantPolicy("a")])
        with pytest.raises(ValueError, match="service rate"):
            gw.process(make_trace([(1.0, 8, "a")]))

    def test_unknown_tenant_rejected_allow_list(self):
        gw = AdmissionGateway(
            [TenantPolicy("a")], service_rate_tokens_per_us=1.0
        )
        result = gw.process(make_trace([(1.0, 8, "a"), (2.0, 8, "ghost")]))
        assert len(result.admitted) == 1
        assert result.rejected[0].reason == REASON_UNKNOWN_TENANT
        assert result.rejected[0].request.tenant == "ghost"
        assert gw.qos_of("ghost") is QosClass.THROUGHPUT_BATCH

    def test_duplicate_policies_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AdmissionGateway([TenantPolicy("a"), TenantPolicy("a")])

    def test_conservation_and_per_tenant_counts(self):
        gw = AdmissionGateway(
            [
                TenantPolicy("a", max_queue_tokens=256),
                TenantPolicy("b", rate_tokens_per_s=100_000.0, burst_tokens=64),
            ],
            service_rate_tokens_per_us=0.05,
        )
        trace = make_trace(
            flood("a", rate_us=50.0, seq_len=64, end=20_000.0)
            + flood("b", rate_us=50.0, seq_len=64, end=20_000.0)
        )
        result = gw.process(trace)  # validates conservation internally
        counts = gw.process(trace).per_tenant_counts()
        total = sum(
            c["admitted"] + c["rejected"] + c["shed"] for c in counts.values()
        )
        assert total == len(trace.requests)
        assert len(result.admitted) + len(result.rejected) + len(
            result.shed
        ) == len(trace.requests)

    def test_deterministic_across_runs(self):
        gw = AdmissionGateway(
            [
                TenantPolicy(
                    "a", rate_tokens_per_s=200_000.0, burst_tokens=512
                ),
                TenantPolicy("b", max_queue_tokens=512),
            ],
            service_rate_tokens_per_us=0.1,
        )
        trace = make_trace(
            flood("a", rate_us=17.0, seq_len=48, end=30_000.0)
            + flood("b", rate_us=31.0, seq_len=96, end=30_000.0)
        )
        first, second = gw.process(trace), gw.process(trace)
        assert first.admitted == second.admitted
        assert first.rejected == second.rejected
        assert first.shed == second.shed
        # rate-limit rejections carry an actionable retry-after
        limited = [
            e for e in first.rejected if e.reason == REASON_RATE_LIMIT
        ]
        assert limited
        assert all(
            e.retry_after_us is not None and e.retry_after_us > 0
            for e in limited
        )


class TestWeightedFairness:
    def test_drr_converges_to_weight_ratio(self):
        """Sustained-backlog token shares converge to weights within 5%."""
        horizon = 200_000.0
        gw = AdmissionGateway(
            [
                TenantPolicy("heavy", weight=3.0, max_queue_tokens=1 << 30),
                TenantPolicy("light", weight=1.0, max_queue_tokens=1 << 30),
            ],
            service_rate_tokens_per_us=1.0,
            quantum_tokens=64,
        )
        # both tenants offer ~4x capacity with different request sizes,
        # so fairness must hold in tokens, not request counts
        trace = make_trace(
            flood("heavy", rate_us=10.0, seq_len=40, end=horizon)
            + flood("light", rate_us=35.0, seq_len=140, end=horizon)
        )
        result = gw.process(trace)
        released = {"heavy": 0, "light": 0}
        for s in result.admitted:
            if s.release_us <= horizon:
                released[s.request.tenant] += s.request.seq_len
        share = released["heavy"] / (released["heavy"] + released["light"])
        assert share == pytest.approx(0.75, abs=0.05)

    def test_work_conserving_when_one_tenant_idle(self):
        gw = AdmissionGateway(
            [
                TenantPolicy("a", weight=3.0),
                TenantPolicy("b", weight=1.0),
            ],
            service_rate_tokens_per_us=1.0,
        )
        # only b sends: it gets the whole server despite weight 1
        trace = make_trace(flood("b", rate_us=100.0, seq_len=50, end=10_000.0))
        result = gw.process(trace)
        assert len(result.admitted) == len(trace.requests)
        assert not result.shed and not result.rejected

    def test_release_pacing_respects_service_rate(self):
        gw = AdmissionGateway(
            [TenantPolicy("a", max_queue_tokens=1 << 30)],
            service_rate_tokens_per_us=0.5,
        )
        trace = make_trace([(0.1, 100, "a"), (0.2, 100, "a"), (0.3, 100, "a")])
        releases = sorted(s.release_us for s in gw.process(trace).admitted)
        # each 100-token request occupies the virtual server for 200 us
        assert releases[1] - releases[0] == pytest.approx(200.0)
        assert releases[2] - releases[1] == pytest.approx(200.0)


class TestOverloadProtection:
    def test_per_tenant_bound_sheds_oldest_first(self):
        gw = AdmissionGateway(
            # queue bound fits two 100-token requests
            [TenantPolicy("a", max_queue_tokens=200)],
            service_rate_tokens_per_us=1e-6,  # effectively frozen server
        )
        trace = make_trace(
            [(1.0, 100, "a"), (2.0, 100, "a"), (3.0, 100, "a"), (4.0, 100, "a")]
        )
        result = gw.process(trace)
        # request 0 ships instantly (idle server), then the frozen
        # server backs the queue up: the bound fits two requests, so the
        # third queued arrival evicts the oldest queued one
        shed_ids = [e.request.request_id for e in result.shed]
        assert shed_ids == [1]
        assert sorted(
            s.request.request_id for s in result.admitted
        ) == [0, 2, 3]
        assert all(e.reason == REASON_QUEUE_OVERFLOW for e in result.shed)

    def test_oversized_request_rejected_not_queue_flushed(self):
        gw = AdmissionGateway(
            [TenantPolicy("a", max_queue_tokens=64)],
            service_rate_tokens_per_us=1e-6,
        )
        result = gw.process(make_trace([(1.0, 32, "a"), (2.0, 128, "a")]))
        assert [e.request.request_id for e in result.rejected] == [1]
        assert not result.shed  # the queued 32-token request survived

    def test_global_shed_takes_batch_class_first(self):
        """The preemption invariant: SLO requests are never shed by
        global pressure while any batch-class request remains queued."""
        gw = AdmissionGateway(
            [
                TenantPolicy(
                    "slo", qos=QosClass.LATENCY_SLO, max_queue_tokens=1 << 30
                ),
                TenantPolicy(
                    "bulk",
                    qos=QosClass.THROUGHPUT_BATCH,
                    max_queue_tokens=1 << 30,
                ),
            ],
            service_rate_tokens_per_us=2.0,
            max_total_queue_tokens=500,
        )
        # slo offers 1 token/us (inside its fair share of the 2/us
        # server, so its queue stays short); bulk offers 5 tokens/us and
        # stays backlogged for the whole horizon — so every global-bound
        # victim must be bulk-class
        rows = flood("slo", rate_us=50.0, seq_len=50, end=5_000.0) + flood(
            "bulk", rate_us=10.0, seq_len=50, end=5_000.0
        )
        result = gw.process(make_trace(rows))
        assert result.shed  # the global bound engaged
        assert all(e.request.tenant == "bulk" for e in result.shed)
        assert all(
            e.reason == REASON_QUEUE_OVERFLOW for e in result.shed
        )

    def test_slo_only_overload_still_bounded(self):
        gw = AdmissionGateway(
            [TenantPolicy("slo", qos=QosClass.LATENCY_SLO)],
            service_rate_tokens_per_us=1e-6,
            max_total_queue_tokens=300,
        )
        trace = make_trace(flood("slo", rate_us=5.0, seq_len=100, end=200.0))
        result = gw.process(trace)
        # with no batch tenants to absorb it, the bound applies to SLO
        assert result.shed
        assert all(e.request.tenant == "slo" for e in result.shed)
        admitted_tokens = sum(s.request.seq_len for s in result.admitted)
        shed_tokens = sum(e.request.seq_len for e in result.shed)
        assert admitted_tokens + shed_tokens == sum(
            r.seq_len for r in trace.requests
        )
