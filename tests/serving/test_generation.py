"""Decode serving runtime: batched rounds bitwise-equal to the oracle."""

import numpy as np
import pytest

from repro.core.config import BertConfig
from repro.serving.faults import FaultSpec
from repro.serving.gateway import AdmissionGateway, QosClass, TenantPolicy
from repro.serving.generation import (
    GenerationRuntime,
    generate_reference_outputs,
)
from repro.serving.report import Outcome, REASON_ADMISSION
from repro.telemetry import Telemetry
from repro.telemetry.slo import (
    DECODE_TOKENS_TOTAL,
    KV_BYTES_PEAK,
    KV_EVICTIONS_TOTAL,
)
from repro.workloads.serving import (
    GenerationRequest,
    ServingTrace,
    make_generation_trace,
)

CFG = BertConfig(num_heads=4, head_size=16, num_layers=2)


def gen_trace(n=10, msl=64, **kwargs):
    kwargs.setdefault("decode_tokens", 8)
    kwargs.setdefault("mean_interarrival_us", 25.0)
    return make_generation_trace(n, msl, **kwargs)


def assert_served_bitwise(runtime, trace, report):
    oracle = generate_reference_outputs(runtime, trace)
    assert report.outputs, "nothing served"
    for rid, out in report.outputs.items():
        np.testing.assert_array_equal(out, oracle[rid])


class TestCleanServing:
    def test_all_served_bitwise_equal_to_oracle(self):
        trace = gen_trace()
        runtime = GenerationRuntime(CFG, seed=0)
        report = runtime.run(trace)
        assert report.counts() == {
            "served": 10, "shed": 0, "failed": 0, "rejected": 0,
        }
        assert_served_bitwise(runtime, trace, report)
        assert report.kv_stats["overflow_allocs"] == 0

    def test_conservation_every_request_settles_once(self):
        trace = gen_trace(n=16)
        report = GenerationRuntime(CFG, seed=1).run(trace)
        assert len(report.outcomes) == trace.num_requests
        assert sorted(o.request_id for o in report.outcomes) == list(
            range(trace.num_requests)
        )

    def test_one_token_prompt(self):
        trace = ServingTrace(
            requests=(
                GenerationRequest(
                    request_id=0, arrival_us=1.0, seq_len=1, decode_tokens=5
                ),
            ),
            max_seq_len=64,
        )
        runtime = GenerationRuntime(CFG, seed=0)
        report = runtime.run(trace)
        assert report.outputs[0].shape == (5, CFG.hidden_size)
        assert_served_bitwise(runtime, trace, report)

    def test_max_context_truncates_the_stream(self):
        # prompt 60 of 64: the last token appends no KV row, so exactly
        # max_context - prompt + 1 = 5 decode steps fit the window
        trace = ServingTrace(
            requests=(
                GenerationRequest(
                    request_id=0, arrival_us=1.0, seq_len=60, decode_tokens=50
                ),
            ),
            max_seq_len=64,
        )
        runtime = GenerationRuntime(CFG, seed=0)
        report = runtime.run(trace)
        assert report.generated_tokens == 5
        assert_served_bitwise(runtime, trace, report)

    def test_stalled_arrivals_advance_the_clock(self):
        # gaps far beyond a round's service time: every round between
        # arrivals is empty and the runtime must jump, not spin
        trace = gen_trace(n=4, mean_interarrival_us=1e6)
        report = GenerationRuntime(CFG, seed=0).run(trace)
        assert len(report.served) == 4
        assert report.makespan_us > 1e5

    def test_grouping_independence_exact(self):
        # same streams, radically different round cuts (budget squeeze):
        # generated bits must not change
        trace = gen_trace(n=6)
        from repro.workloads.batching import MixedContinuousBatcher

        wide = GenerationRuntime(CFG, seed=3)
        narrow = GenerationRuntime(
            CFG,
            seed=3,
            batcher=MixedContinuousBatcher(token_budget=80),
        )
        out_w = wide.run(trace).outputs
        out_n = narrow.run(trace).outputs
        assert out_w.keys() == out_n.keys()
        for rid in out_w:
            np.testing.assert_array_equal(out_w[rid], out_n[rid])


class TestKVPressure:
    def test_eviction_resume_is_bitwise(self):
        trace = gen_trace(n=10, mean_interarrival_us=5.0)
        runtime = GenerationRuntime(CFG, seed=0, kv_capacity_tokens=128)
        report = runtime.run(trace)
        assert report.kv_stats["evictions"] >= 1
        assert report.kv_stats["swap_ins"] >= 1
        assert report.kv_stats["overflow_allocs"] == 0
        assert len(report.served) == 10
        assert_served_bitwise(runtime, trace, report)

    def test_impossible_prompt_shed_at_admission(self):
        trace = ServingTrace(
            requests=(
                GenerationRequest(
                    request_id=0, arrival_us=1.0, seq_len=60, decode_tokens=2
                ),
            ),
            max_seq_len=64,
        )
        report = GenerationRuntime(CFG, seed=0, kv_capacity_tokens=32).run(
            trace
        )
        (outcome,) = report.outcomes
        assert outcome.outcome is Outcome.SHED
        assert outcome.reason == REASON_ADMISSION

    def test_kv_telemetry_gauges(self):
        tel = Telemetry()
        trace = gen_trace(n=8, mean_interarrival_us=5.0)
        GenerationRuntime(
            CFG, seed=0, kv_capacity_tokens=128, telemetry=tel
        ).run(trace)
        snapshot = str(tel.metrics.snapshot())
        assert KV_BYTES_PEAK in snapshot
        assert KV_EVICTIONS_TOTAL in snapshot
        assert DECODE_TOKENS_TOTAL in snapshot


class TestChaos:
    def test_served_streams_survive_faults_bitwise(self):
        trace = gen_trace(n=10)
        runtime = GenerationRuntime(
            CFG,
            seed=0,
            faults=FaultSpec(
                launch_failure_rate=0.25,
                transient_oom_rate=0.1,
                target_prefixes=("paged_decode",),
            ),
        )
        report = runtime.run(trace)
        assert report.injected_faults
        assert len(report.outcomes) == 10
        assert_served_bitwise(runtime, trace, report)

    def test_ladder_escapes_to_looped_decode(self):
        trace = gen_trace(n=12)
        runtime = GenerationRuntime(
            CFG,
            seed=0,
            faults=FaultSpec(
                launch_failure_rate=0.5,
                target_prefixes=("paged_decode",),
            ),
        )
        report = runtime.run(trace)
        assert any(
            t.to_level == "decode-looped" for t in report.transitions
        )
        assert_served_bitwise(runtime, trace, report)

    def test_chaos_with_eviction_pressure(self):
        trace = gen_trace(n=10, mean_interarrival_us=5.0)
        runtime = GenerationRuntime(
            CFG,
            seed=0,
            kv_capacity_tokens=128,
            faults=FaultSpec(
                launch_failure_rate=0.15,
                transient_oom_rate=0.05,
                target_prefixes=("paged_decode",),
            ),
        )
        report = runtime.run(trace)
        assert report.kv_stats["evictions"] >= 1
        assert report.kv_stats["overflow_allocs"] == 0
        assert_served_bitwise(runtime, trace, report)


class TestGateway:
    def test_decode_slo_tenant_settles_everything(self):
        trace = gen_trace(n=8, tenant="chat")
        runtime = GenerationRuntime(
            CFG,
            seed=0,
            gateway=AdmissionGateway(
                [
                    TenantPolicy(
                        "chat",
                        qos=QosClass.LATENCY_SLO,
                        slo_target=0.5,
                        decode_slo_us=1.0,  # every token is "late"
                    )
                ]
            ),
        )
        report = runtime.run(trace)
        assert len(report.outcomes) == 8
        assert len(report.served) == 8
        assert_served_bitwise(runtime, trace, report)


class TestRuntimeDelegate:
    def test_serving_runtime_generate(self):
        from repro.serving.runtime import ServingRuntime

        trace = gen_trace(n=4)
        report = ServingRuntime(CFG).generate(trace)
        assert len(report.served) == 4
        assert report.generated_tokens > 0


class TestReport:
    def test_us_per_token_and_hit_rate(self):
        trace = gen_trace(n=10)
        report = GenerationRuntime(CFG, seed=0).run(trace)
        assert report.us_per_token == pytest.approx(
            report.gpu_busy_us / report.generated_tokens
        )
        assert 0.0 <= report.graph_hit_rate <= 1.0
        text = report.render_text()
        assert "generation report" in text
        assert "kv arena" in text

    def test_token_times_are_monotone(self):
        trace = gen_trace(n=6)
        report = GenerationRuntime(CFG, seed=0).run(trace)
        for times in report.token_times.values():
            assert list(times) == sorted(times)
            assert len(set(times)) == len(times)
