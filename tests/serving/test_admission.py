"""High-water-mark admission control."""

import pytest

from repro.serving.admission import AdmissionController


class TestAdmission:
    def test_admits_below_high_water(self):
        ctrl = AdmissionController(high_water_us=1000.0)
        assert ctrl.admit(0.0)
        assert ctrl.admit(1000.0)

    def test_rejects_above_high_water(self):
        ctrl = AdmissionController(high_water_us=1000.0)
        assert not ctrl.admit(1000.1)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            AdmissionController(high_water_us=0.0)
