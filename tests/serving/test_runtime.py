"""Chaos acceptance suite for the fault-tolerant serving runtime.

The headline contracts from the robustness work:

* no silent loss — every request settles exactly once, even at 10%
  injected fault rates;
* served bits are identical to a fault-free replay of the same trace;
* the same fault seed reproduces the same outcome log;
* the degradation ladder is genuinely exercised: at least one step-down
  and at least one recovery under sustained fault pressure.
"""

import numpy as np
import pytest

from repro.core.config import BertConfig
from repro.core.model import BertEncoderModel
from repro.serving import (
    NO_FAULTS,
    NO_RETRIES,
    AdmissionController,
    DegradationLadder,
    FaultSpec,
    Outcome,
    REASON_ADMISSION,
    REASON_DEADLINE,
    REASON_RETRY_BUDGET,
    RetryPolicy,
    ServingRuntime,
)
from repro.workloads.batching import TimeoutBatcher
from repro.workloads.serving import make_trace

CONFIG = BertConfig(num_heads=4, head_size=16, num_layers=2)

#: ~10% of eligible fused-attention launches fault (plus some slowdowns)
CHAOS = FaultSpec(
    launch_failure_rate=0.06,
    transient_oom_rate=0.04,
    slow_rate=0.05,
    slow_factor=4.0,
    target_prefixes=("fused_mha", "fmha_"),
)


def runtime(faults=NO_FAULTS, *, seed=7, numerics=False, **kwargs):
    return ServingRuntime(
        CONFIG,
        batcher=TimeoutBatcher(batch_size=8, timeout_us=2000.0),
        ladder=DegradationLadder(
            trip_threshold=2, window_us=20_000.0, cooldown_us=15_000.0
        ),
        faults=faults,
        numerics=BertEncoderModel(CONFIG, seed=seed) if numerics else None,
        seed=seed,
        **kwargs,
    )


def trace(n=60, **kwargs):
    kwargs.setdefault("mean_interarrival_us", 350.0)
    kwargs.setdefault("seed", 7)
    return make_trace(n, 128, **kwargs)


class TestNoSilentLoss:
    def test_every_request_settles_exactly_once_under_chaos(self):
        t = trace(80)
        report = runtime(CHAOS).run(t)
        assert report.num_requests == t.num_requests
        ids = [o.request_id for o in report.outcomes]
        assert sorted(ids) == [r.request_id for r in t.requests]
        assert len(set(ids)) == len(ids)
        counts = report.counts()
        assert counts["served"] + counts["shed"] + counts["failed"] == 80

    def test_faults_were_actually_injected(self):
        report = runtime(CHAOS).run(trace(80))
        assert report.injected_faults
        assert any(o.retries > 0 for o in report.served)


class TestBitIdentity:
    def test_chaos_outputs_match_fault_free_replay(self):
        t = trace(80)
        clean = runtime(NO_FAULTS, numerics=True).run(t)
        chaos = runtime(CHAOS, numerics=True).run(t)
        # chaos visits degraded levels, so the comparison is meaningful
        assert any(o.level != chaos.top_level for o in chaos.served)
        both = sorted(set(clean.outputs) & set(chaos.outputs))
        assert both, "no served requests in common to compare"
        for rid in both:
            assert np.array_equal(clean.outputs[rid], chaos.outputs[rid])


class TestDeterminism:
    def test_same_seed_reproduces_outcome_log(self):
        t = trace(60)
        a = runtime(CHAOS).run(t)
        b = runtime(CHAOS).run(t)
        assert a.outcome_log() == b.outcome_log()
        assert a.transitions == b.transitions
        assert a.fault_counts() == b.fault_counts()

    def test_different_fault_seed_changes_the_log(self):
        t = trace(60)
        a = runtime(CHAOS, seed=7).run(t)
        b = runtime(CHAOS, seed=8).run(t)
        assert a.outcome_log() != b.outcome_log()


class TestDegradationLadderExercised:
    def test_steps_down_and_recovers_under_fault_pressure(self):
        report = runtime(CHAOS).run(trace(150))
        reasons = [t.reason for t in report.transitions]
        assert "fault-pressure" in reasons
        assert "recovered" in reasons
        # some requests were served while degraded
        assert any(o.level != report.top_level for o in report.served)


class TestDeadlinesAndAdmission:
    def test_tight_deadlines_shed_instead_of_serving_late(self):
        t = trace(60, mean_interarrival_us=15.0, deadline_us=1200.0)
        report = runtime(NO_FAULTS).run(t)
        shed = report.shed
        assert shed
        assert all(o.reason == REASON_DEADLINE for o in shed)
        by_id = {r.request_id: r for r in t.requests}
        for o in report.served:
            assert o.latency_us <= by_id[o.request_id].deadline_us

    def test_admission_controller_rejects_early_under_overload(self):
        t = trace(60, mean_interarrival_us=15.0, deadline_us=1200.0)
        report = runtime(
            NO_FAULTS, admission=AdmissionController(high_water_us=1200.0)
        ).run(t)
        admission_shed = [
            o for o in report.shed if o.reason == REASON_ADMISSION
        ]
        assert admission_shed
        # rejected requests never consume GPU time, so makespan shrinks
        baseline = runtime(NO_FAULTS).run(t)
        assert report.gpu_busy_us < baseline.gpu_busy_us

    def test_deadline_free_trace_never_sheds(self):
        report = runtime(NO_FAULTS).run(trace(30))
        assert not report.shed
        assert not report.failed


class TestRetryBudget:
    def test_certain_faults_with_no_retries_fail_everything(self):
        # rate-1.0 faults with no targeting hit every level's kernels,
        # so no amount of degradation escapes them
        always = FaultSpec(launch_failure_rate=1.0)
        report = runtime(always, retry=NO_RETRIES).run(trace(20))
        assert not report.served
        assert all(o.reason == REASON_RETRY_BUDGET for o in report.failed)
        assert report.counts()["failed"] + report.counts()["shed"] == 20

    def test_retries_recover_from_transient_faults(self):
        flaky = FaultSpec(
            launch_failure_rate=0.2, target_prefixes=("fused_mha", "fmha_")
        )
        report = runtime(
            flaky, retry=RetryPolicy(max_retries=5)
        ).run(trace(40))
        assert report.served
        assert any(o.retries > 0 for o in report.served)


class TestReport:
    def test_latency_summary_groups(self):
        report = runtime(CHAOS).run(trace(80))
        summary = report.latency_summary()
        assert "all" in summary
        for stats in summary.values():
            assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]

    def test_render_text_mentions_everything(self):
        text = runtime(CHAOS).run(trace(40)).render_text()
        assert "serving report" in text
        assert "injected faults" in text
        assert "degradation transitions" in text

    def test_outputs_empty_without_numerics(self):
        report = runtime(NO_FAULTS).run(trace(10))
        assert report.outputs == {}
