"""Chaos acceptance suite for the fault-tolerant serving runtime.

The headline contracts from the robustness work:

* no silent loss — every request settles exactly once, even at 10%
  injected fault rates;
* served bits are identical to a fault-free replay of the same trace;
* the same fault seed reproduces the same outcome log;
* the degradation ladder is genuinely exercised: at least one step-down
  and at least one recovery under sustained fault pressure.
"""

import numpy as np
import pytest

from repro.core.config import BertConfig
from repro.core.model import BertEncoderModel
from repro.serving import (
    NO_FAULTS,
    NO_RETRIES,
    AdmissionController,
    DegradationLadder,
    FaultSpec,
    Outcome,
    REASON_ADMISSION,
    REASON_DEADLINE,
    REASON_RETRY_BUDGET,
    RetryPolicy,
    ServingRuntime,
)
from repro.serving import (
    AdmissionGateway,
    QosClass,
    REASON_RATE_LIMIT,
    TenantPolicy,
)
from repro.serving.degradation import BUDGET_BURN
from repro.telemetry import Telemetry
from repro.telemetry.slo import SloReport
from repro.workloads.batching import TimeoutBatcher
from repro.workloads.serving import Request, ServingTrace, make_trace

CONFIG = BertConfig(num_heads=4, head_size=16, num_layers=2)

#: ~10% of eligible fused-attention launches fault (plus some slowdowns)
CHAOS = FaultSpec(
    launch_failure_rate=0.06,
    transient_oom_rate=0.04,
    slow_rate=0.05,
    slow_factor=4.0,
    target_prefixes=("fused_mha", "fmha_"),
)


def runtime(faults=NO_FAULTS, *, seed=7, numerics=False, **kwargs):
    return ServingRuntime(
        CONFIG,
        batcher=TimeoutBatcher(batch_size=8, timeout_us=2000.0),
        ladder=DegradationLadder(
            trip_threshold=2, window_us=20_000.0, cooldown_us=15_000.0
        ),
        faults=faults,
        numerics=BertEncoderModel(CONFIG, seed=seed) if numerics else None,
        seed=seed,
        **kwargs,
    )


def trace(n=60, **kwargs):
    kwargs.setdefault("mean_interarrival_us", 350.0)
    kwargs.setdefault("seed", 7)
    return make_trace(n, 128, **kwargs)


class TestNoSilentLoss:
    def test_every_request_settles_exactly_once_under_chaos(self):
        t = trace(80)
        report = runtime(CHAOS).run(t)
        assert report.num_requests == t.num_requests
        ids = [o.request_id for o in report.outcomes]
        assert sorted(ids) == [r.request_id for r in t.requests]
        assert len(set(ids)) == len(ids)
        counts = report.counts()
        assert counts["served"] + counts["shed"] + counts["failed"] == 80

    def test_faults_were_actually_injected(self):
        report = runtime(CHAOS).run(trace(80))
        assert report.injected_faults
        assert any(o.retries > 0 for o in report.served)


class TestBitIdentity:
    def test_chaos_outputs_match_fault_free_replay(self):
        t = trace(80)
        clean = runtime(NO_FAULTS, numerics=True).run(t)
        chaos = runtime(CHAOS, numerics=True).run(t)
        # chaos visits degraded levels, so the comparison is meaningful
        assert any(o.level != chaos.top_level for o in chaos.served)
        both = sorted(set(clean.outputs) & set(chaos.outputs))
        assert both, "no served requests in common to compare"
        for rid in both:
            assert np.array_equal(clean.outputs[rid], chaos.outputs[rid])


class TestDeterminism:
    def test_same_seed_reproduces_outcome_log(self):
        t = trace(60)
        a = runtime(CHAOS).run(t)
        b = runtime(CHAOS).run(t)
        assert a.outcome_log() == b.outcome_log()
        assert a.transitions == b.transitions
        assert a.fault_counts() == b.fault_counts()

    def test_different_fault_seed_changes_the_log(self):
        t = trace(60)
        a = runtime(CHAOS, seed=7).run(t)
        b = runtime(CHAOS, seed=8).run(t)
        assert a.outcome_log() != b.outcome_log()


class TestDegradationLadderExercised:
    def test_steps_down_and_recovers_under_fault_pressure(self):
        report = runtime(CHAOS).run(trace(150))
        reasons = [t.reason for t in report.transitions]
        assert "fault-pressure" in reasons
        assert "recovered" in reasons
        # some requests were served while degraded
        assert any(o.level != report.top_level for o in report.served)


class TestDeadlinesAndAdmission:
    def test_tight_deadlines_shed_instead_of_serving_late(self):
        t = trace(60, mean_interarrival_us=15.0, deadline_us=1200.0)
        report = runtime(NO_FAULTS).run(t)
        shed = report.shed
        assert shed
        assert all(o.reason == REASON_DEADLINE for o in shed)
        by_id = {r.request_id: r for r in t.requests}
        for o in report.served:
            assert o.latency_us <= by_id[o.request_id].deadline_us

    def test_admission_controller_rejects_early_under_overload(self):
        t = trace(60, mean_interarrival_us=15.0, deadline_us=1200.0)
        report = runtime(
            NO_FAULTS, admission=AdmissionController(high_water_us=1200.0)
        ).run(t)
        admission_shed = [
            o for o in report.shed if o.reason == REASON_ADMISSION
        ]
        assert admission_shed
        # rejected requests never consume GPU time, so makespan shrinks
        baseline = runtime(NO_FAULTS).run(t)
        assert report.gpu_busy_us < baseline.gpu_busy_us

    def test_deadline_free_trace_never_sheds(self):
        report = runtime(NO_FAULTS).run(trace(30))
        assert not report.shed
        assert not report.failed


class TestRetryBudget:
    def test_certain_faults_with_no_retries_fail_everything(self):
        # rate-1.0 faults with no targeting hit every level's kernels,
        # so no amount of degradation escapes them
        always = FaultSpec(launch_failure_rate=1.0)
        report = runtime(always, retry=NO_RETRIES).run(trace(20))
        assert not report.served
        assert all(o.reason == REASON_RETRY_BUDGET for o in report.failed)
        assert report.counts()["failed"] + report.counts()["shed"] == 20

    def test_retries_recover_from_transient_faults(self):
        flaky = FaultSpec(
            launch_failure_rate=0.2, target_prefixes=("fused_mha", "fmha_")
        )
        report = runtime(
            flaky, retry=RetryPolicy(max_retries=5)
        ).run(trace(40))
        assert report.served
        assert any(o.retries > 0 for o in report.served)


class TestReport:
    def test_latency_summary_groups(self):
        report = runtime(CHAOS).run(trace(80))
        summary = report.latency_summary()
        assert "all" in summary
        for stats in summary.values():
            assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]

    def test_render_text_mentions_everything(self):
        text = runtime(CHAOS).run(trace(40)).render_text()
        assert "serving report" in text
        assert "injected faults" in text
        assert "degradation transitions" in text

    def test_outputs_empty_without_numerics(self):
        report = runtime(NO_FAULTS).run(trace(10))
        assert report.outputs == {}


def tenant_trace(rows, max_seq_len=128):
    """Trace from (arrival_us, seq_len, tenant[, deadline]) tuples."""
    requests = tuple(
        Request(
            request_id=i,
            arrival_us=float(row[0]),
            seq_len=int(row[1]),
            deadline_us=row[3] if len(row) > 3 else None,
            tenant=row[2],
        )
        for i, row in enumerate(sorted(rows, key=lambda r: r[0]))
    )
    return ServingTrace(requests=requests, max_seq_len=max_seq_len)


def gateway_runtime(gateway, *, numerics=False, telemetry=None, seed=7):
    return ServingRuntime(
        CONFIG,
        batcher=TimeoutBatcher(batch_size=8, timeout_us=2000.0),
        ladder=DegradationLadder(
            trip_threshold=2, window_us=20_000.0, cooldown_us=15_000.0
        ),
        numerics=BertEncoderModel(CONFIG, seed=seed) if numerics else None,
        telemetry=telemetry,
        gateway=gateway,
        seed=seed,
    )


class TestGatewayPath:
    """The multi-tenant pre-pass composed with the replay runtime."""

    def mixed_rows(self, n=24):
        rows = []
        for i in range(n):
            rows.append((400.0 * i, 32 + (i % 4) * 24, "slo", 40_000.0))
            rows.append((400.0 * i + 150.0, 64, "bulk"))
        return rows

    def mixed_gateway(self, **overrides):
        kwargs = dict(service_rate_tokens_per_us=0.5)
        kwargs.update(overrides)
        return AdmissionGateway(
            [
                TenantPolicy(
                    "slo",
                    qos=QosClass.LATENCY_SLO,
                    weight=3.0,
                    slo_target=0.99,
                ),
                TenantPolicy("bulk", qos=QosClass.THROUGHPUT_BATCH),
            ],
            **kwargs,
        )

    def test_served_bits_match_per_request_oracle(self):
        trace = tenant_trace(self.mixed_rows())
        report = gateway_runtime(self.mixed_gateway(), numerics=True).run(
            trace
        )
        assert report.served and report.outputs
        oracle = BertEncoderModel(CONFIG, seed=7)
        hidden = CONFIG.hidden_size
        for rid, got in report.outputs.items():
            req = next(r for r in trace.requests if r.request_id == rid)
            rng = np.random.default_rng([7, rid])
            x = rng.standard_normal((1, req.seq_len, hidden))
            mask = np.ones((1, req.seq_len))
            assert np.array_equal(got, oracle.forward(x, mask)[0])

    def test_conservation_with_rejections_and_sheds(self):
        gw = self.mixed_gateway()
        # throttle bulk hard so rate-limit rejections actually occur
        gw = AdmissionGateway(
            [
                TenantPolicy("slo", qos=QosClass.LATENCY_SLO, weight=3.0),
                TenantPolicy(
                    "bulk",
                    qos=QosClass.THROUGHPUT_BATCH,
                    rate_tokens_per_s=20_000.0,
                    burst_tokens=64.0,
                    max_queue_tokens=256,
                ),
            ],
            service_rate_tokens_per_us=0.05,
        )
        trace = tenant_trace(self.mixed_rows(40))
        report = gateway_runtime(gw).run(trace)
        counts = report.counts()
        assert counts["rejected"] > 0
        assert (
            counts["served"]
            + counts["shed"]
            + counts["failed"]
            + counts["rejected"]
        ) == trace.num_requests
        ids = sorted(o.request_id for o in report.outcomes)
        assert ids == [r.request_id for r in trace.requests]
        limited = [
            o for o in report.outcomes if o.outcome is Outcome.REJECTED
        ]
        assert limited
        assert all(o.reason == REASON_RATE_LIMIT for o in limited)
        assert all(o.tenant == "bulk" for o in limited)

    def test_deadline_expired_in_gateway_queue_is_shed(self):
        # a near-frozen drain server: queued SLO requests outlive their
        # deadlines at the gateway and must settle as deadline sheds
        gw = self.mixed_gateway(service_rate_tokens_per_us=1e-4)
        rows = [(10.0 * i, 64, "slo", 2_000.0) for i in range(12)]
        report = gateway_runtime(gw).run(tenant_trace(rows))
        deadline_sheds = [
            o
            for o in report.outcomes
            if o.outcome is Outcome.SHED and o.reason == REASON_DEADLINE
        ]
        assert deadline_sheds
        assert len(report.outcomes) == 12

    def test_budget_burn_pressures_the_ladder(self):
        # each 64-token request holds the drain server 6.4 ms: queued
        # arrivals outlive their 2 ms deadlines back to back, so the
        # burn incidents cluster inside the ladder's 20 ms trip window
        gw = self.mixed_gateway(service_rate_tokens_per_us=0.01)
        rows = [(10.0 * i, 64, "slo", 2_000.0) for i in range(12)]
        rt = gateway_runtime(gw)
        rt.run(tenant_trace(rows))
        assert any(
            t.reason.startswith(BUDGET_BURN)
            for t in rt.ladder.transitions
        )

    def test_per_tenant_slo_report_matches_outcome_log(self):
        tel = Telemetry()
        trace = tenant_trace(self.mixed_rows())
        report = gateway_runtime(
            self.mixed_gateway(), telemetry=tel
        ).run(trace)
        for tenant in ("slo", "bulk"):
            view = SloReport.for_tenant(tel.metrics, tenant)
            settled = report.by_tenant(tenant)
            assert view.total == len(settled)
            assert view.served == sum(
                1 for o in settled if o.outcome is Outcome.SERVED
            )

    def test_gateway_run_is_deterministic(self):
        trace = tenant_trace(self.mixed_rows())
        a = gateway_runtime(self.mixed_gateway(), numerics=True).run(trace)
        b = gateway_runtime(self.mixed_gateway(), numerics=True).run(trace)
        assert [o.outcome for o in a.outcomes] == [
            o.outcome for o in b.outcomes
        ]
        assert all(
            np.array_equal(a.outputs[k], b.outputs[k]) for k in a.outputs
        )
