"""Continuous token-budget batching through the serving runtime.

The tentpole contracts: a megabatch-served request gets bitwise the
output it would get served alone (even under seeded chaos, where a
failed megabatch retries only its surviving segments), and steady-state
serving replays tile-keyed launch graphs instead of dispatching eagerly.
"""

import numpy as np
import pytest

from repro.core.config import FUSED_MHA, BertConfig
from repro.core.model import BertEncoderModel
from repro.serving import (
    NO_FAULTS,
    ContinuousBatcher,
    FaultSpec,
    Outcome,
    ServingRuntime,
    retile,
)
from repro.workloads.batching import BucketBatcher, TimeoutBatcher
from repro.workloads.serving import make_trace

CONFIG = BertConfig(num_heads=4, head_size=16, num_layers=2)

CHAOS = FaultSpec(
    launch_failure_rate=0.06,
    transient_oom_rate=0.04,
    slow_rate=0.05,
    slow_factor=4.0,
    target_prefixes=("fused_mha", "fmha_"),
)


def runtime(faults=NO_FAULTS, *, batcher=None, seed=7, numerics=True):
    return ServingRuntime(
        CONFIG,
        batcher=batcher
        if batcher is not None
        else ContinuousBatcher(token_budget=1024),
        faults=faults,
        opt=FUSED_MHA,
        numerics=(
            BertEncoderModel(CONFIG, FUSED_MHA, seed=seed)
            if numerics
            else None
        ),
        seed=seed,
    )


def trace(n=40, **kwargs):
    kwargs.setdefault("mean_interarrival_us", 350.0)
    kwargs.setdefault("seed", 7)
    return make_trace(n, 128, **kwargs)


class TestBitwiseEquivalence:
    def test_megabatch_outputs_equal_per_request_serving(self):
        t = trace()
        continuous = runtime().run(t)
        looped = runtime(
            batcher=TimeoutBatcher(batch_size=8, timeout_us=2000.0)
        ).run(t)
        assert sorted(continuous.outputs) == sorted(looped.outputs)
        assert len(continuous.outputs) == t.num_requests
        for rid in continuous.outputs:
            np.testing.assert_array_equal(
                continuous.outputs[rid], looped.outputs[rid]
            )

    def test_chaos_outputs_equal_clean_run(self):
        # segment-scoped retry: a faulted megabatch re-tiles its
        # survivors and retries them, and the served bits must still be
        # exactly the fault-free bits
        t = trace(60)
        clean = runtime(NO_FAULTS).run(t)
        chaos = runtime(CHAOS).run(t)
        assert chaos.injected_faults, "chaos run injected nothing"
        assert any(o.retries > 0 for o in chaos.served)
        both = sorted(set(clean.outputs) & set(chaos.outputs))
        assert both
        for rid in both:
            np.testing.assert_array_equal(
                clean.outputs[rid], chaos.outputs[rid]
            )

    def test_seeded_chaos_reproducible(self):
        t = trace(50)
        a = runtime(CHAOS).run(t)
        b = runtime(CHAOS).run(t)
        assert [
            (o.request_id, o.outcome, o.retries) for o in a.outcomes
        ] == [(o.request_id, o.outcome, o.retries) for o in b.outcomes]


class TestNoSilentLossUnderContinuous:
    def test_every_request_settles_exactly_once(self):
        t = trace(60)
        report = runtime(CHAOS).run(t)
        ids = sorted(o.request_id for o in report.outcomes)
        assert ids == [r.request_id for r in t.requests]

    def test_deadline_shedding_still_applies(self):
        t = trace(40, deadline_us=900.0)
        report = runtime().run(t)
        counts = report.counts()
        assert counts["served"] + counts["shed"] == t.num_requests
        for outcome in report.outcomes:
            if outcome.outcome is Outcome.SERVED:
                assert outcome.latency_us <= 900.0


class TestTileGraphReuse:
    def test_steady_state_replays_tile_graphs(self):
        rt = runtime(numerics=False)
        t = trace(40)
        rt.run(t)
        first = rt.graph_cache.kind_counts().get("tile", {})
        assert first.get("captures", 0) >= 1
        rt.run(t)
        second = rt.graph_cache.kind_counts()["tile"]
        # warm tiles: second pass captures nothing new, only replays
        assert second["captures"] == first["captures"]
        assert second["replays"] > first["replays"]

    def test_retile_quantizes_to_batcher_tiles(self):
        batcher = ContinuousBatcher(token_budget=1024)
        assert retile(100, batcher, 1024) == 512
        assert retile(600, batcher, 1024) == 1024
        # non-continuous batchers keep the dispatch's original tile
        assert retile(100, BucketBatcher(), 1024) == 1024


class TestComparativeEfficiency:
    def test_continuous_busy_time_not_worse_than_bucket_when_loaded(self):
        # under load megabatches fill their tiles, so the quantization
        # padding is amortized and the merged dispatches beat bucketed
        # per-request pricing (the bench gates the full-shape version)
        t = trace(64, mean_interarrival_us=60.0)
        cont = runtime(
            batcher=ContinuousBatcher(token_budget=2048), numerics=False
        ).run(t)
        bucket = runtime(
            batcher=BucketBatcher(), numerics=False
        ).run(t)
        assert cont.counts()["served"] == t.num_requests
        assert bucket.counts()["served"] == t.num_requests
        assert cont.gpu_busy_us <= bucket.gpu_busy_us
