"""Fault-injection layer: determinism, rates, targeting, hook wiring."""

import numpy as np
import pytest

from repro.gpusim import ExecutionContext, KernelLaunch, LaunchFailure, TransientOom
from repro.gpusim.errors import TransientFault
from repro.serving.faults import (
    LAUNCH_FAILURE,
    NO_FAULTS,
    SLOW_KERNEL,
    TRANSIENT_OOM,
    FaultPlan,
    FaultSpec,
)


def launch(name="k", grid=64):
    return KernelLaunch(
        name=name, category="test", grid=grid, block_threads=128,
        flops=1e6, dram_bytes=1e5,
    )


def drive(plan, n=300, name="k"):
    """Run n launches through the plan; return the outcome string list."""
    outcomes = []
    for _ in range(n):
        try:
            scale = plan.on_launch(launch(name), 0)
        except LaunchFailure:
            outcomes.append(LAUNCH_FAILURE)
        except TransientOom:
            outcomes.append(TRANSIENT_OOM)
        else:
            outcomes.append(SLOW_KERNEL if scale > 1.0 else "ok")
    return outcomes


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="in \\[0, 1\\]"):
            FaultSpec(launch_failure_rate=-0.1)
        with pytest.raises(ValueError, match="sum"):
            FaultSpec(launch_failure_rate=0.6, transient_oom_rate=0.5)
        with pytest.raises(ValueError, match="slow_factor"):
            FaultSpec(slow_rate=0.1, slow_factor=0.5)

    def test_targeting(self):
        spec = FaultSpec(
            launch_failure_rate=1.0, target_prefixes=("fmha_",)
        )
        assert spec.targets("fmha_grouped_qk")
        assert not spec.targets("gemm0_qkv")
        assert NO_FAULTS.targets("anything")


class TestFaultPlan:
    def test_same_seed_same_outcomes(self):
        spec = FaultSpec(
            launch_failure_rate=0.1, transient_oom_rate=0.1, slow_rate=0.1
        )
        a = drive(FaultPlan(spec, seed=42))
        b = drive(FaultPlan(spec, seed=42))
        assert a == b

    def test_different_seed_differs(self):
        spec = FaultSpec(launch_failure_rate=0.3)
        assert drive(FaultPlan(spec, seed=1)) != drive(FaultPlan(spec, seed=2))

    def test_rates_roughly_honoured(self):
        spec = FaultSpec(
            launch_failure_rate=0.2, transient_oom_rate=0.1, slow_rate=0.1
        )
        outcomes = drive(FaultPlan(spec, seed=0), n=3000)
        frac = outcomes.count(LAUNCH_FAILURE) / len(outcomes)
        assert 0.15 < frac < 0.25
        frac = outcomes.count(TRANSIENT_OOM) / len(outcomes)
        assert 0.06 < frac < 0.14

    def test_untargeted_kernels_never_fault(self):
        spec = FaultSpec(
            launch_failure_rate=1.0, target_prefixes=("fmha_",)
        )
        plan = FaultPlan(spec, seed=0)
        assert drive(plan, n=50, name="gemm0_qkv") == ["ok"] * 50
        assert plan.injected == []

    def test_no_faults_plan_is_inert(self):
        plan = FaultPlan(NO_FAULTS, seed=0)
        assert drive(plan, n=50) == ["ok"] * 50

    def test_injection_log_records_kinds(self):
        spec = FaultSpec(launch_failure_rate=0.5, slow_rate=0.5)
        plan = FaultPlan(spec, seed=3)
        drive(plan, n=100)
        kinds = plan.fault_counts()
        assert set(kinds) == {LAUNCH_FAILURE, SLOW_KERNEL}
        assert sum(kinds.values()) == 100


class TestHookWiring:
    def test_fault_aborts_launch_without_record(self):
        ctx = ExecutionContext()
        plan = FaultPlan(FaultSpec(launch_failure_rate=1.0), seed=0)
        plan.install(ctx)
        ctx.launch_hook = plan.on_launch
        before = ctx.elapsed_us()
        with pytest.raises(TransientFault):
            ctx.launch(launch())
        assert ctx.kernel_count() == 0
        assert ctx.elapsed_us() == before

    def test_slow_kernel_stretches_latency(self):
        clean = ExecutionContext()
        clean.launch(launch())
        slow = ExecutionContext()
        FaultPlan(
            FaultSpec(slow_rate=1.0, slow_factor=4.0), seed=0
        ).install(slow)
        slow.launch(launch())
        assert slow.elapsed_us() == pytest.approx(4.0 * clean.elapsed_us())

    def test_hookless_context_unchanged(self):
        a, b = ExecutionContext(), ExecutionContext()
        a.launch(launch())
        FaultPlan(NO_FAULTS, seed=0).install(b)
        b.launch(launch())
        assert a.elapsed_us() == b.elapsed_us()
