"""Retry policy: backoff growth, cap, jitter, validation."""

import numpy as np
import pytest

from repro.serving.retry import NO_RETRIES, RetryPolicy


def rng():
    return np.random.default_rng(0)


class TestRetryPolicy:
    def test_exponential_growth(self):
        policy = RetryPolicy(
            base_backoff_us=100.0, multiplier=2.0,
            max_backoff_us=100_000.0, jitter=0.0,
        )
        delays = [policy.backoff_us(a, rng()) for a in range(4)]
        assert delays == [100.0, 200.0, 400.0, 800.0]

    def test_cap(self):
        policy = RetryPolicy(
            base_backoff_us=100.0, multiplier=10.0,
            max_backoff_us=500.0, jitter=0.0,
        )
        assert policy.backoff_us(5, rng()) == 500.0

    def test_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(base_backoff_us=1000.0, jitter=0.2)
        a = policy.backoff_us(0, np.random.default_rng(9))
        b = policy.backoff_us(0, np.random.default_rng(9))
        assert a == b
        assert 800.0 <= a <= 1200.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="max_backoff_us"):
            RetryPolicy(base_backoff_us=100.0, max_backoff_us=10.0)
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().backoff_us(-1, rng())

    def test_no_retries_budget(self):
        assert NO_RETRIES.max_retries == 0
