"""Chaos over graph replay: cached pricing must not change fault behaviour.

The launch-graph cache skips per-kernel pricing on repeat shapes, but the
launch *hook* still sees every replayed launch.  A seeded fault plan must
therefore inject the exact same fault sequence — same kernels, same
eligible-launch ordinals — whether each batch is priced eagerly or
replayed from the cache, and the whole serving report must be identical.
"""

from repro.core.config import BertConfig
from repro.serving import DegradationLadder, FaultSpec, ServingRuntime
from repro.workloads.batching import TimeoutBatcher
from repro.workloads.serving import make_trace

CONFIG = BertConfig(num_heads=4, head_size=16, num_layers=2)

CHAOS = FaultSpec(
    launch_failure_rate=0.06,
    transient_oom_rate=0.04,
    slow_rate=0.05,
    slow_factor=4.0,
    target_prefixes=("fused_mha", "fmha_"),
)


def _run(use_graph):
    runtime = ServingRuntime(
        CONFIG,
        batcher=TimeoutBatcher(batch_size=8, timeout_us=2000.0),
        ladder=DegradationLadder(
            trip_threshold=2, window_us=20_000.0, cooldown_us=15_000.0
        ),
        faults=CHAOS,
        seed=7,
        use_graph=use_graph,
    )
    trace = make_trace(80, 128, mean_interarrival_us=350.0, seed=7)
    return runtime, runtime.run(trace)


class TestChaosReplayOverGraphCache:
    def test_same_seed_same_faults_with_and_without_graph(self):
        _, eager = _run(use_graph=False)
        graphed_runtime, graphed = _run(use_graph=True)

        # the cache was actually exercised: repeat shapes replayed
        assert graphed_runtime.graph_cache is not None
        assert graphed_runtime.graph_cache.hits > 0

        # identical seeded fault sequence (kernel names + ordinals)...
        assert graphed.injected_faults == eager.injected_faults
        assert graphed.injected_faults  # ...and it is non-trivial

        # ...and an identical serving report, bit for bit
        assert graphed.outcomes == eager.outcomes
        assert graphed.gpu_busy_us == eager.gpu_busy_us
        assert graphed.makespan_us == eager.makespan_us

    def test_faults_do_not_corrupt_the_cache(self):
        runtime, report = _run(use_graph=True)
        assert report.injected_faults
        # every cached graph still replays its full fault-free stream:
        # a mid-replay fault aborted that call only, never the cache
        from repro.gpusim.stream import ExecutionContext

        for graph in runtime.graph_cache._entries.values():
            ctx = ExecutionContext(runtime.device)
            assert graph.replay(ctx) == graph.modelled_us
            assert len(ctx.records) == len(graph)
