"""Acceptance suite for multi-device sharded serving.

The contracts:

* the Σlen²-balanced router is deterministic, keeps every replica's
  stream in arrival order, and genuinely balances attention work;
* a one-device :class:`ShardConfig` reproduces the single-device
  runtime exactly (routing, stealing and per-device accounting are all
  identity at D=1);
* sharded served outputs are bitwise-equal to the per-request oracle —
  data parallel, tensor parallel, clean and under seeded chaos,
  including chaos aimed exclusively at the interconnect collectives;
* telemetry stays an observer: per-device gauges/lanes appear only on
  multi-device runs and attaching telemetry never changes the replay.
"""

import numpy as np
import pytest

from repro.core.config import BertConfig
from repro.core.model import BertEncoderModel
from repro.serving import FaultSpec, NO_FAULTS, ServingRuntime
from repro.serving.sharded import ShardConfig, ShardRouter
from repro.telemetry import Telemetry
from repro.telemetry.slo import (
    DEVICE_BUSY_US,
    DEVICE_IMBALANCE,
    STEALS_TOTAL,
)
from repro.gpusim.trace import telemetry_chrome_trace
from repro.workloads.batching import ContinuousBatcher
from repro.workloads.serving import Request, make_trace

CONFIG = BertConfig(num_heads=2, head_size=16, num_layers=2)

#: chaos aimed only at the interconnect collectives
COMM_CHAOS = FaultSpec(
    launch_failure_rate=0.1, target_prefixes=("allreduce",)
)
COMPUTE_CHAOS = FaultSpec(
    launch_failure_rate=0.05,
    transient_oom_rate=0.05,
    target_prefixes=("fused_mha", "fmha_"),
)


def runtime(sharding=None, faults=NO_FAULTS, *, seed=7, numerics=False,
            telemetry=None):
    return ServingRuntime(
        CONFIG,
        batcher=ContinuousBatcher(token_budget=256, timeout_us=200.0),
        faults=faults,
        numerics=BertEncoderModel(CONFIG, seed=seed) if numerics else None,
        seed=seed,
        sharding=sharding,
        telemetry=telemetry,
    )


def trace(n=24, **kwargs):
    kwargs.setdefault("seed", 7)
    return make_trace(n, 64, **kwargs)


def assert_oracle_bitwise(report, t, seed=7):
    """Every served output equals the per-request forward, bit for bit."""
    oracle = BertEncoderModel(CONFIG, seed=seed)
    by_id = {r.request_id: r for r in t.requests}
    assert report.outputs, "nothing served to check"
    for rid, out in report.outputs.items():
        request = by_id[rid]
        rng = np.random.default_rng([seed, rid])
        x = rng.standard_normal((1, request.seq_len, CONFIG.hidden_size))
        mask = np.ones((1, request.seq_len))
        assert np.array_equal(out, oracle.forward(x, mask)[0]), (
            f"request {rid} diverged from the oracle"
        )


# ----------------------------------------------------------------------
# ShardConfig


class TestShardConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardConfig(devices=0)
        with pytest.raises(ValueError):
            ShardConfig(devices=4, mode="zz")
        with pytest.raises(ValueError):
            ShardConfig(devices=4, mode="dp", tp_size=2)
        with pytest.raises(ValueError):
            ShardConfig(devices=4, mode="tp", tp_size=2)
        with pytest.raises(ValueError):
            ShardConfig(devices=4, mode="both")  # needs tp_size
        with pytest.raises(ValueError):
            ShardConfig(devices=6, mode="both", tp_size=4)  # must divide

    def test_derived_shapes(self):
        dp = ShardConfig(devices=8, mode="dp")
        assert (dp.tp, dp.replicas) == (1, 8)
        assert dp.shard_spec is None
        tp = ShardConfig(devices=8, mode="tp")
        assert (tp.tp, tp.replicas) == (8, 1)
        assert tp.shard_spec.tp == 8 and tp.shard_spec.rank == 0
        both = ShardConfig(devices=8, mode="both", tp_size=2)
        assert (both.tp, both.replicas) == (2, 4)

    def test_single_device_builds_no_cluster(self):
        from repro.gpusim import A100_SPEC

        assert ShardConfig().build_cluster(A100_SPEC) is None
        assert (
            ShardConfig(devices=4).build_cluster(A100_SPEC).num_devices == 4
        )


# ----------------------------------------------------------------------
# the Σlen² router


def _requests(lens):
    return [
        Request(request_id=i, seq_len=length, arrival_us=float(i))
        for i, length in enumerate(lens)
    ]


class TestShardRouter:
    def test_single_replica_is_a_passthrough(self):
        reqs = _requests([5, 9, 3])
        assert ShardRouter(1).route(reqs) == [reqs]

    def test_partition_is_exact_and_deterministic(self):
        rng = np.random.default_rng(0)
        reqs = _requests(rng.integers(1, 64, size=100).tolist())
        router = ShardRouter(4)
        buckets = router.route(reqs)
        again = router.route(reqs)
        assert buckets == again
        routed = [r.request_id for bucket in buckets for r in bucket]
        assert sorted(routed) == [r.request_id for r in reqs]

    def test_buckets_stay_in_arrival_order(self):
        rng = np.random.default_rng(1)
        reqs = _requests(rng.integers(1, 64, size=96).tolist())
        for bucket in ShardRouter(4).route(reqs):
            arrivals = [r.arrival_us for r in bucket]
            assert arrivals == sorted(arrivals)

    def test_quadratic_balance_beats_round_robin_on_skewed_lengths(self):
        # a few giants among many shorts: count-balanced routing
        # overloads whoever draws the giants; Σlen² routing must not
        rng = np.random.default_rng(2)
        lens = np.minimum(rng.zipf(1.3, size=128) * 8, 512).tolist()
        reqs = _requests(lens)
        router = ShardRouter(4)
        work = router.routed_work(router.route(reqs))
        round_robin = [
            [r for i, r in enumerate(reqs) if i % 4 == d] for d in range(4)
        ]
        rr_work = router.routed_work(round_robin)
        assert max(work) / (sum(work) / 4) <= max(rr_work) / (
            sum(rr_work) / 4
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, window_per_replica=0)


# ----------------------------------------------------------------------
# single-device identity


class TestSingleDeviceIdentity:
    def test_explicit_one_device_config_changes_nothing(self):
        t = trace(32)
        plain = runtime().run(t)
        configured = runtime(ShardConfig(devices=1)).run(t)
        assert plain.outcome_log() == configured.outcome_log()
        assert plain.makespan_us == configured.makespan_us
        assert configured.device_busy_us == (configured.gpu_busy_us,)
        assert configured.work_steals == 0


# ----------------------------------------------------------------------
# bitwise oracle under sharding


class TestShardedBitwiseOracle:
    @pytest.mark.parametrize(
        "sharding",
        [
            ShardConfig(devices=4, mode="dp"),
            ShardConfig(devices=2, mode="tp"),
            ShardConfig(devices=4, mode="both", tp_size=2),
        ],
        ids=["dp4", "tp2", "both4"],
    )
    def test_clean_outputs_match_oracle(self, sharding):
        t = trace()
        report = runtime(sharding, numerics=True).run(t)
        assert len(report.served) == t.num_requests
        assert_oracle_bitwise(report, t)

    def test_dp_outputs_match_oracle_under_compute_chaos(self):
        t = trace()
        report = runtime(
            ShardConfig(devices=4, mode="dp"), COMPUTE_CHAOS, numerics=True
        ).run(t)
        assert report.injected_faults
        assert_oracle_bitwise(report, t)

    def test_tp_outputs_match_oracle_under_collective_chaos(self):
        t = trace()
        report = runtime(
            ShardConfig(devices=2, mode="tp"), COMM_CHAOS, numerics=True
        ).run(t)
        collective_faults = [
            f
            for f in report.injected_faults
            if f.kernel.startswith("allreduce")
        ]
        assert collective_faults, "chaos never hit a collective kernel"
        assert_oracle_bitwise(report, t)

    def test_sharded_replay_is_deterministic(self):
        t = trace()
        sharding = ShardConfig(devices=4, mode="dp")
        a = runtime(sharding, COMPUTE_CHAOS).run(t)
        b = runtime(sharding, COMPUTE_CHAOS).run(t)
        assert a.outcome_log() == b.outcome_log()
        assert a.device_busy_us == b.device_busy_us
        assert a.work_steals == b.work_steals


# ----------------------------------------------------------------------
# work stealing and device-local retries


class TestWorkStealing:
    def test_saturating_trace_steals_and_balances(self):
        t = trace(96, mean_interarrival_us=1.0)
        report = runtime(ShardConfig(devices=4, mode="dp")).run(t)
        assert report.work_steals > 0
        assert len(report.device_busy_us) == 4
        assert all(b > 0 for b in report.device_busy_us)

    def test_sum_of_device_busy_is_gpu_busy(self):
        t = trace(48, mean_interarrival_us=1.0)
        report = runtime(ShardConfig(devices=4, mode="dp")).run(t)
        assert report.gpu_busy_us == pytest.approx(
            sum(report.device_busy_us)
        )


# ----------------------------------------------------------------------
# telemetry: per-device series, lanes, and neutrality


class TestShardedTelemetry:
    def test_per_device_gauges_only_on_multi_device_runs(self):
        t = trace(32, mean_interarrival_us=1.0)
        single_tel = Telemetry()
        runtime(telemetry=single_tel).run(t)
        assert not list(single_tel.metrics.family(DEVICE_BUSY_US))
        assert not list(single_tel.metrics.family(DEVICE_IMBALANCE))

        tel = Telemetry()
        runtime(
            ShardConfig(devices=4, mode="dp"), telemetry=tel
        ).run(t)
        busy = list(tel.metrics.family(DEVICE_BUSY_US))
        assert len(busy) == 4
        labels = {dict(m.labels)["device"] for m in busy}
        assert labels == {"0", "1", "2", "3"}
        assert list(tel.metrics.family(DEVICE_IMBALANCE))
        assert list(tel.metrics.family(STEALS_TOTAL))

    def test_telemetry_is_bitwise_neutral_on_sharded_runs(self):
        t = trace()
        sharding = ShardConfig(devices=4, mode="dp")
        bare = runtime(sharding, COMPUTE_CHAOS, numerics=True).run(t)
        observed = runtime(
            sharding, COMPUTE_CHAOS, numerics=True, telemetry=Telemetry()
        ).run(t)
        assert bare.outcome_log() == observed.outcome_log()
        assert bare.makespan_us == observed.makespan_us
        for rid in bare.outputs:
            assert np.array_equal(bare.outputs[rid], observed.outputs[rid])

    def test_trace_gets_per_device_and_interconnect_lanes(self):
        t = trace(32, mean_interarrival_us=1.0)
        tel = Telemetry()
        runtime(ShardConfig(devices=4, mode="dp"), telemetry=tel).run(t)
        events = telemetry_chrome_trace(tel)["traceEvents"]
        thread_names = {
            e["args"]["name"]
            for e in events
            if e["name"] == "thread_name"
        }
        assert {"kernels d0", "kernels d1", "kernels d2", "kernels d3",
                "interconnect"} <= thread_names

    def test_collectives_land_on_the_interconnect_lane(self):
        t = trace()
        tel = Telemetry()
        runtime(ShardConfig(devices=2, mode="tp"), telemetry=tel).run(t)
        doc = telemetry_chrome_trace(tel)
        by_tid = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        }
        comm = [
            e
            for e in doc["traceEvents"]
            if e.get("cat") == "collective" and e["ph"] == "X"
        ]
        assert comm, "tp replay priced no collectives into the trace"
        assert {by_tid[e["tid"]] for e in comm} == {"interconnect"}

    def test_single_device_trace_keeps_the_legacy_layout(self):
        t = trace(16)
        tel = Telemetry()
        runtime(telemetry=tel).run(t)
        events = telemetry_chrome_trace(tel)["traceEvents"]
        thread_names = {
            e["args"]["name"]
            for e in events
            if e["name"] == "thread_name"
        }
        assert thread_names == {"stages", "kernels"}
        kernel_events = [
            e for e in events if str(e.get("cat", "")).startswith("gemm")
        ]
        assert kernel_events
        assert {e["tid"] for e in kernel_events} == {1}
