"""Schema and sanity of the wall-clock benchmark harness (quick shape)."""

from __future__ import annotations

import json

import pytest

from repro.bench.wallclock import (
    QUICK_OVERRIDES,
    check_invariants,
    check_warnings,
    format_summary,
    run_wallclock_bench,
    write_bench_json,
)


@pytest.fixture(scope="module")
def result():
    return run_wallclock_bench(**QUICK_OVERRIDES)


def test_required_schema_keys(result):
    for key in (
        "config",
        "wall_us",
        "modelled_us",
        "reference_wall_us",
        "speedup_vs_reference",
        "sections",
        "invariants",
        "notes",
    ):
        assert key in result, key


def test_config_section(result):
    config = result["config"]
    for key in (
        "batch",
        "max_seq_len",
        "alpha",
        "layers",
        "preset",
        "repeats",
        "seed",
        "hidden_size",
        "num_heads",
        "total_tokens",
    ):
        assert key in config, key
    assert config["batch"] == QUICK_OVERRIDES["batch"]
    assert config["max_seq_len"] == QUICK_OVERRIDES["max_seq_len"]
    assert config["layers"] == QUICK_OVERRIDES["layers"]


def test_timings_positive(result):
    assert result["wall_us"] > 0
    assert result["modelled_us"] > 0
    assert result["reference_wall_us"] > 0
    assert result["speedup_vs_reference"] > 0
    packing = result["sections"]["packing"]
    for key in (
        "reference_loop_us",
        "vectorized_build_us",
        "cache_hit_us",
        "speedup_vs_reference",
        "speedup_cache_hit",
    ):
        assert packing[key] > 0, key


def test_invariants_hold(result):
    inv = result["invariants"]
    assert inv["outputs_match_atol_1e-6"] is True
    assert inv["launch_streams_identical"] is True
    assert inv["max_abs_diff"] <= 1e-6
    assert inv["kernel_count"] > 0
    assert inv["modelled_us_looped"] == inv["modelled_us_vectorized"]


def test_attention_section_present_for_fused_preset(result):
    attention = result["sections"]["attention"]
    assert attention["wall_us"] > 0
    assert attention["reference_wall_us"] > 0


def test_graph_replay_section(result):
    graph = result["sections"]["graph_replay"]
    assert graph["eager_us"] > 0
    assert graph["capture_us"] > 0
    assert graph["replay_us"] > 0
    assert graph["speedup_vs_eager"] > 1.0  # replay must beat eager pricing
    steady = graph["steady_state_forward"]
    assert steady["wall_us"] > 0
    assert steady["outputs_bitwise_equal"] is True
    inv = result["invariants"]
    assert inv["graph_modelled_us_equal"] is True
    assert inv["graph_streams_identical"] is True
    assert inv["steady_outputs_bitwise_equal"] is True
    assert inv["steady_modelled_us_equal"] is True


def test_steady_state_alloc_section(result):
    alloc = result["sections"]["steady_state_alloc"]
    assert alloc["arena_engaged"] is True
    assert alloc["large_allocation_count"] == 0
    assert alloc["arena_footprint_bytes"] > 0
    assert 0 <= alloc["peak_delta_bytes"] < alloc["peak_budget_bytes"]


def test_cache_stats_reported(result):
    stats = {s["name"]: s for s in result["cache_stats"]}
    for name in ("packing", "estimator_graphs", "model_graphs"):
        assert name in stats, name
        assert stats[name]["misses"] >= 1
    # the bench exercises every cache's hit path
    assert stats["estimator_graphs"]["hits"] >= 1
    assert stats["model_graphs"]["hits"] >= 1


def test_check_invariants_passes_and_detects_breakage(result):
    assert check_invariants(result) == []
    broken = json.loads(json.dumps(result))  # deep copy
    broken["invariants"]["graph_streams_identical"] = False
    broken["sections"]["steady_state_alloc"]["large_allocation_count"] = 3
    failures = check_invariants(broken)
    assert any("stream" in f for f in failures)
    assert any("large allocations" in f for f in failures)


def test_json_round_trip(result, tmp_path):
    path = write_bench_json(result, tmp_path / "bench.json")
    loaded = json.loads(path.read_text())
    assert loaded["config"]["preset"] == result["config"]["preset"]
    assert loaded["wall_us"] == pytest.approx(result["wall_us"])


def test_summary_renders(result):
    text = format_summary(result)
    assert "wall-clock bench" in text
    assert "invariants" in text


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown preset"):
        run_wallclock_bench(preset="nope", **QUICK_OVERRIDES)


def test_continuous_serving_section(result):
    serving = result["sections"]["continuous_serving"]
    for key in (
        "trace",
        "token_budget",
        "baseline",
        "continuous",
        "speedup_vs_reference",
        "floor",
        "hit_rate_floor",
    ):
        assert key in serving, key
    for run in (serving["baseline"], serving["continuous"]):
        assert run["gpu_busy_us"] > 0
        assert run["served_tokens"] > 0
        assert run["us_per_token"] > 0
        assert 0.0 <= run["steady_hit_rate"] <= 1.0
    # acceptance gates: steady-state tile graphs replay, and merged
    # megabatches price no worse per token than bucketed dispatches
    assert serving["continuous"]["steady_hit_rate"] >= serving["hit_rate_floor"]
    assert serving["speedup_vs_reference"] >= serving["floor"]
    tile = serving["continuous"]["graph_kinds"].get("tile", {})
    assert tile.get("replays", 0) >= 1


def test_floor_fields_present(result):
    assert result["sections"]["forward"]["floor"] == 1.0
    assert result["sections"]["forward"]["amdahl_capped"] is True
    assert result["sections"]["attention"]["floor"] == 1.0
    assert result["sections"]["attention"]["wall_clock_floor"] is True


def test_floor_breach_fails_only_on_modelled_clock_sections(result):
    # continuous_serving's speedup is a modelled-clock metric
    # (deterministic), so its floor is a hard --check gate
    broken = json.loads(json.dumps(result))  # deep copy
    broken["sections"]["continuous_serving"]["speedup_vs_reference"] = 0.5
    failures = check_invariants(broken)
    assert any("continuous_serving" in f and "floor" in f for f in failures)
    # forward is Amdahl-capped and attention is a noisy wall-clock
    # measurement: their breaches warn but never fail
    warned = json.loads(json.dumps(result))
    warned["sections"]["forward"]["speedup_vs_reference"] = 0.5
    warned["sections"]["attention"]["speedup_vs_reference"] = 0.5
    assert not any(
        "forward" in f or "attention" in f for f in check_invariants(warned)
    )
    warnings = check_warnings(warned)
    assert any("forward" in w and "Amdahl" in w for w in warnings)
    assert any("attention" in w and "wall-clock" in w for w in warnings)


def test_hit_rate_breach_fails(result):
    broken = json.loads(json.dumps(result))
    broken["sections"]["continuous_serving"]["continuous"][
        "steady_hit_rate"
    ] = 0.1
    failures = check_invariants(broken)
    assert any("hit rate" in f for f in failures)


def test_summary_mentions_serving(result):
    assert "serving" in format_summary(result)


def test_host_parallel_section(result):
    hp = result["sections"]["host_parallel"]
    for key in (
        "cores",
        "executor",
        "workers",
        "fork_available",
        "tile",
        "segments",
        "total_tokens",
        "wall_us",
        "reference_wall_us",
        "speedup_vs_reference",
        "floor",
        "amdahl_capped",
    ):
        assert key in hp, key
    assert hp["floor"] == 1.15
    # the deterministic gates hold regardless of host speed
    assert hp["outputs_bitwise_equal"] is True
    assert hp["launch_streams_identical"] is True
    assert hp["modelled_us_equal"] is True
    fg = hp["fast_gelu"]
    assert fg["wall_us"] > 0
    assert fg["atol"] > 0
    assert 0 < fg["max_abs_diff"] <= fg["atol"]
    assert fg["within_atol"] is True
    assert fg["launch_streams_identical"] is True


def test_host_parallel_deterministic_gates_always_fail_hard(result):
    broken = json.loads(json.dumps(result))  # deep copy
    hp = broken["sections"]["host_parallel"]
    hp["outputs_bitwise_equal"] = False
    hp["modelled_us_equal"] = False
    hp["fast_gelu"]["within_atol"] = False
    failures = check_invariants(broken)
    assert any("executor output != serial output" in f for f in failures)
    assert any("executor changed modelled_us" in f for f in failures)
    assert any("fast-gelu" in f and "atol" in f for f in failures)


def test_host_parallel_floor_warns_when_amdahl_capped(result):
    capped = json.loads(json.dumps(result))
    hp = capped["sections"]["host_parallel"]
    hp["speedup_vs_reference"] = 0.5
    hp["amdahl_capped"] = True
    assert not any(
        "host_parallel" in f for f in check_invariants(capped)
    )
    assert any(
        "host_parallel" in w for w in check_warnings(capped)
    )
    # on a real multi-core fan-out the same breach is a hard failure
    uncapped = json.loads(json.dumps(capped))
    uncapped["sections"]["host_parallel"]["amdahl_capped"] = False
    assert any(
        "host_parallel" in f and "floor" in f
        for f in check_invariants(uncapped)
    )


def test_arena_overflow_gate(result):
    assert (
        result["sections"]["steady_state_alloc"]["arena_overflow_allocs"]
        == 0
    )
    broken = json.loads(json.dumps(result))
    broken["sections"]["steady_state_alloc"]["arena_overflow_allocs"] = 3
    assert any("overflow" in f for f in check_invariants(broken))


def test_summary_mentions_host_parallel(result):
    assert "host-par" in format_summary(result)


def test_sharded_serving_section(result):
    sharded = result["sections"]["sharded_serving"]
    points = sharded["scaling"]["points"]
    assert [p["devices"] for p in points] == [2, 4, 8]
    for point in points:
        assert point["served"] == 384
        # dp floors are hard: the modelled clock is deterministic
        assert point["speedup_vs_single_device"] >= point["floor"]
    assert points[-1]["floor"] == 6.5  # the 8-device acceptance bar
    for name, leg in sharded["bitwise"].items():
        assert leg["served"] > 0, name
        assert leg["outputs_bitwise_equal"] is True, name
    chaos_leg = sharded["bitwise"]["tp_collective_chaos"]
    assert chaos_leg["collective_faults_injected"] >= 1
    rows = sharded["crossover"]["rows"]
    assert rows and all(0.0 < r["comm_fraction"] < 1.0 for r in rows)
    # at a fixed tile, more tensor-parallel ranks shift the balance
    # toward communication: more all-reduce hops, less compute per rank
    for tile in {r["tile"] for r in rows}:
        fracs = [r["comm_fraction"] for r in rows if r["tile"] == tile]
        assert fracs == sorted(fracs)


def test_sharded_floor_breach_fails_check(result):
    broken = json.loads(json.dumps(result))  # deep copy
    point = broken["sections"]["sharded_serving"]["scaling"]["points"][-1]
    point["speedup_vs_single_device"] = 1.0
    failures = check_invariants(broken)
    assert any("sharded serving" in f and "floor" in f for f in failures)
    missed = json.loads(json.dumps(result))
    missed["sections"]["sharded_serving"]["bitwise"]["tp_collective_chaos"][
        "collective_faults_injected"
    ] = 0
    assert any(
        "collective" in f for f in check_invariants(missed)
    )
