"""Schema and sanity of the wall-clock benchmark harness (quick shape)."""

from __future__ import annotations

import json

import pytest

from repro.bench.wallclock import (
    QUICK_OVERRIDES,
    format_summary,
    run_wallclock_bench,
    write_bench_json,
)


@pytest.fixture(scope="module")
def result():
    return run_wallclock_bench(**QUICK_OVERRIDES)


def test_required_schema_keys(result):
    for key in (
        "config",
        "wall_us",
        "modelled_us",
        "reference_wall_us",
        "speedup_vs_reference",
        "sections",
        "invariants",
        "notes",
    ):
        assert key in result, key


def test_config_section(result):
    config = result["config"]
    for key in (
        "batch",
        "max_seq_len",
        "alpha",
        "layers",
        "preset",
        "repeats",
        "seed",
        "hidden_size",
        "num_heads",
        "total_tokens",
    ):
        assert key in config, key
    assert config["batch"] == QUICK_OVERRIDES["batch"]
    assert config["max_seq_len"] == QUICK_OVERRIDES["max_seq_len"]
    assert config["layers"] == QUICK_OVERRIDES["layers"]


def test_timings_positive(result):
    assert result["wall_us"] > 0
    assert result["modelled_us"] > 0
    assert result["reference_wall_us"] > 0
    assert result["speedup_vs_reference"] > 0
    packing = result["sections"]["packing"]
    for key in (
        "reference_loop_us",
        "vectorized_build_us",
        "cache_hit_us",
        "speedup_vs_reference",
        "speedup_cache_hit",
    ):
        assert packing[key] > 0, key


def test_invariants_hold(result):
    inv = result["invariants"]
    assert inv["outputs_match_atol_1e-6"] is True
    assert inv["launch_streams_identical"] is True
    assert inv["max_abs_diff"] <= 1e-6
    assert inv["kernel_count"] > 0
    assert inv["modelled_us_looped"] == inv["modelled_us_vectorized"]


def test_attention_section_present_for_fused_preset(result):
    attention = result["sections"]["attention"]
    assert attention["wall_us"] > 0
    assert attention["reference_wall_us"] > 0


def test_json_round_trip(result, tmp_path):
    path = write_bench_json(result, tmp_path / "bench.json")
    loaded = json.loads(path.read_text())
    assert loaded["config"]["preset"] == result["config"]["preset"]
    assert loaded["wall_us"] == pytest.approx(result["wall_us"])


def test_summary_renders(result):
    text = format_summary(result)
    assert "wall-clock bench" in text
    assert "invariants" in text


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown preset"):
        run_wallclock_bench(preset="nope", **QUICK_OVERRIDES)
