"""Framework cost models: features, support ranges, ordering."""

import numpy as np
import pytest

from repro.core.config import BertConfig
from repro.frameworks import (
    ByteTransformer,
    FasterTransformer,
    PyTorchJIT,
    TensorFlowXLA,
    TurboTransformer,
    all_frameworks,
    table1_rows,
)
from repro.gpusim import ExecutionContext
from repro.workloads.generator import uniform_lengths

CFG = BertConfig()  # 12 layers, paper standard
SMALL_CFG = BertConfig(num_layers=2)


@pytest.fixture()
def workload():
    rng = np.random.default_rng(5)
    return uniform_lengths(16, 256, 0.6, rng), 256


class TestFeatures:
    def test_five_frameworks(self):
        assert len(all_frameworks()) == 5

    def test_names_match_paper_legend(self):
        names = {fw.name for fw in all_frameworks()}
        assert names == {
            "PyTorch JIT",
            "TensorFlow XLA",
            "TurboTransformer",
            "FasterTransformer",
            "ByteTransformer",
        }

    def test_only_byte_transformer_has_unlimited_fused_mha(self):
        for fw in all_frameworks():
            if fw.name == "ByteTransformer":
                assert fw.features.fused_mha_max_seq == -1
            elif fw.name == "FasterTransformer":
                assert fw.features.fused_mha_max_seq == 512
            else:
                assert fw.features.fused_mha_max_seq is None

    def test_table_rendering(self):
        table = table1_rows(all_frameworks())
        assert "ByteTransformer" in table
        assert "partially" in table
        assert "<= 512" in table


class TestSupport:
    def test_turbo_rejects_long_sequences(self):
        turbo = TurboTransformer()
        assert turbo.supports(511)
        assert not turbo.supports(512)
        with pytest.raises(ValueError, match="support"):
            turbo.latency_us(SMALL_CFG, np.array([100]), 1024)

    def test_others_unlimited(self):
        for fw in (PyTorchJIT(), TensorFlowXLA(), FasterTransformer(), ByteTransformer()):
            assert fw.supports(4096)


class TestEstimates:
    def test_all_estimates_positive(self, workload):
        lens, seq = workload
        for fw in all_frameworks():
            assert fw.latency_us(SMALL_CFG, lens, seq) > 0

    def test_byte_transformer_fastest_at_paper_workload(self, workload):
        lens, seq = workload
        times = {
            fw.name: fw.latency_us(CFG, lens, seq) for fw in all_frameworks()
        }
        bt = times.pop("ByteTransformer")
        assert all(bt < t for t in times.values())

    def test_paper_ordering_at_scale(self):
        """Average over the sweep: Turbo worst, then XLA, then PyTorch,
        then FasterTransformer — the ordering of Figure 14's gaps."""
        rng = np.random.default_rng(0)
        sums = {fw.name: 0.0 for fw in all_frameworks()}
        counts = {fw.name: 0 for fw in all_frameworks()}
        for batch in (8, 16):
            for seq in (128, 256, 448):
                lens = uniform_lengths(batch, seq, 0.6, rng)
                bt = ByteTransformer().latency_us(CFG, lens, seq)
                for fw in all_frameworks():
                    if fw.supports(seq):
                        sums[fw.name] += fw.latency_us(CFG, lens, seq) / bt
                        counts[fw.name] += 1
        ratios = {k: sums[k] / counts[k] for k in sums}
        assert ratios["TurboTransformer"] > ratios["PyTorch JIT"]
        assert ratios["TensorFlow XLA"] > ratios["PyTorch JIT"]
        assert ratios["PyTorch JIT"] > ratios["FasterTransformer"]
        assert ratios["FasterTransformer"] > 1.0

    def test_ft_long_sequence_fallback_changes_kernels(self):
        ft = FasterTransformer()
        rng = np.random.default_rng(1)

        short = ExecutionContext()
        ft.estimate(short, SMALL_CFG, uniform_lengths(4, 256, 0.6, rng), 256)
        short_names = {r.launch.name for r in short.records}
        assert "trt_fused_mha" in short_names

        long = ExecutionContext()
        ft.estimate(long, SMALL_CFG, uniform_lengths(4, 1024, 0.6, rng), 1024)
        long_names = {r.launch.name for r in long.records}
        assert "trt_fused_mha" not in long_names
        assert "ft_bmm_qk" in long_names

    def test_ft_degrades_past_512(self):
        """FT's time-per-token jumps when the TRT fused MHA cuts out."""
        ft = FasterTransformer()
        rng = np.random.default_rng(2)
        lens_512 = uniform_lengths(8, 512, 0.6, rng)
        lens_640 = uniform_lengths(8, 640, 0.6, rng)
        t512 = ft.latency_us(CFG, lens_512, 512) / lens_512.sum()
        t640 = ft.latency_us(CFG, lens_640, 640) / lens_640.sum()
        assert t640 > 1.1 * t512

    def test_turbo_group_count_drives_cost(self):
        """More groups (tight packing) trade padding for launch overhead;
        the same lengths with forced single group must differ."""
        turbo_many = TurboTransformer(group_cost_tokens=0)
        turbo_one = TurboTransformer(group_cost_tokens=10**6)
        lens = np.array([100, 100, 400, 400])
        t_many = turbo_many.latency_us(SMALL_CFG, lens, 448)
        t_one = turbo_one.latency_us(SMALL_CFG, lens, 448)
        assert t_many != pytest.approx(t_one, rel=1e-3)

    def test_estimates_deterministic(self, workload):
        lens, seq = workload
        fw = ByteTransformer()
        assert fw.latency_us(SMALL_CFG, lens, seq) == pytest.approx(
            fw.latency_us(SMALL_CFG, lens, seq)
        )

    def test_xla_slower_than_pytorch(self, workload):
        lens, seq = workload
        assert TensorFlowXLA().latency_us(
            CFG, lens, seq
        ) > PyTorchJIT().latency_us(CFG, lens, seq)


class TestFeatureLabels:
    def test_fused_mha_labels(self):
        from repro.frameworks.base import FrameworkFeatures

        none = FrameworkFeatures(False, True, None, "no")
        capped = FrameworkFeatures(True, True, 512, "no")
        full = FrameworkFeatures(True, True, -1, "yes")
        assert none.fused_mha_label() == "no"
        assert capped.fused_mha_label() == "<= 512"
        assert full.fused_mha_label() == "yes"
