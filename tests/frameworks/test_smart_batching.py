"""TurboTransformer's length-grouping DP: optimality and partition laws."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frameworks.turbo_transformer import smart_batching


def partition_cost(sorted_lens, groups_of_indices, group_cost):
    total = 0
    for group in groups_of_indices:
        total += len(group) * max(sorted_lens[i] for i in group) + group_cost
    return total


def brute_force_best(lens, group_cost):
    """Optimal contiguous partition of the descending-sorted lengths."""
    sorted_lens = sorted(lens, reverse=True)
    n = len(sorted_lens)
    best = None
    for cuts in range(n):
        for positions in itertools.combinations(range(1, n), cuts):
            bounds = [0, *positions, n]
            groups = [
                list(range(bounds[i], bounds[i + 1]))
                for i in range(len(bounds) - 1)
            ]
            cost = partition_cost(sorted_lens, groups, group_cost)
            if best is None or cost < best:
                best = cost
    return best


class TestPartitionLaws:
    def test_groups_partition_the_batch(self):
        lens = np.array([10, 300, 40, 200, 45, 12])
        groups = smart_batching(lens, group_cost_tokens=50)
        seen = np.concatenate(groups)
        assert sorted(seen.tolist()) == list(range(len(lens)))

    def test_similar_lengths_grouped_together(self):
        lens = np.array([500, 490, 20, 25])
        groups = smart_batching(lens, group_cost_tokens=30)
        as_sets = [set(lens[g]) for g in groups]
        assert {500, 490} in as_sets
        assert {20, 25} in as_sets

    def test_zero_cost_isolates_every_length(self):
        lens = np.array([100, 50, 25])
        groups = smart_batching(lens, group_cost_tokens=0)
        assert len(groups) == 3

    def test_huge_cost_single_group(self):
        lens = np.array([100, 50, 25, 10])
        groups = smart_batching(lens, group_cost_tokens=10_000)
        assert len(groups) == 1

    def test_single_sentence(self):
        groups = smart_batching(np.array([42]), group_cost_tokens=10)
        assert len(groups) == 1
        assert groups[0].tolist() == [0]

    def test_equal_lengths_one_group(self):
        groups = smart_batching(np.full(8, 64), group_cost_tokens=16)
        assert len(groups) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            smart_batching(np.array([]), 10)
        with pytest.raises(ValueError, match="non-negative"):
            smart_batching(np.array([4]), -1)


class TestOptimality:
    @given(
        lens=st.lists(st.integers(1, 100), min_size=1, max_size=7),
        group_cost=st.integers(0, 150),
    )
    @settings(max_examples=40, deadline=None)
    def test_dp_matches_brute_force(self, lens, group_cost):
        arr = np.asarray(lens)
        groups = smart_batching(arr, group_cost)
        sorted_lens = sorted(lens, reverse=True)
        # rebuild the DP's cost from the returned groups
        dp_cost = sum(
            len(g) * int(arr[g].max()) + group_cost for g in groups
        )
        assert dp_cost == brute_force_best(lens, group_cost)
        del sorted_lens

    @given(lens=st.lists(st.integers(1, 64), min_size=2, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_groups_are_length_disjoint_ranges(self, lens):
        """Groups come from a contiguous partition of the sorted order:
        their length ranges must not interleave."""
        arr = np.asarray(lens)
        groups = smart_batching(arr, group_cost_tokens=8)
        ranges = sorted(
            (int(arr[g].min()), int(arr[g].max())) for g in groups
        )
        for (_, hi_prev), (lo_next, _) in zip(ranges, ranges[1:]):
            assert hi_prev <= lo_next
