"""Decoder layer and seq2seq model vs the oracle."""

import numpy as np
import pytest

from repro.core.config import BASELINE, FUSED_MHA, RM_PADDING, BertConfig
from repro.core.padding import pack, packing_from_mask, unpack
from repro.decoder import (
    Seq2SeqModel,
    decoder_layer_packed,
    init_decoder_weights,
    reference_decoder,
    reference_decoder_layer,
)
from repro.core.weights import init_model_weights
from repro.gpusim import ExecutionContext
from repro.workloads.generator import make_batch

CFG = BertConfig(num_heads=4, head_size=16, num_layers=2)


@pytest.fixture(scope="module")
def setup():
    enc_w = init_model_weights(CFG, seed=1)
    dec_w = init_decoder_weights(CFG, seed=2)
    src = make_batch(3, 24, CFG.hidden_size, alpha=0.6, seed=3)
    tgt = make_batch(3, 16, CFG.hidden_size, alpha=0.7, seed=4)
    return enc_w, dec_w, src, tgt


class TestDecoderLayer:
    def test_matches_oracle(self, setup):
        _, dec_w, src, tgt = setup
        src_packing = packing_from_mask(src.mask)
        tgt_packing = packing_from_mask(tgt.mask)
        memory = pack(
            src.x.reshape(-1, src.hidden), src_packing
        )
        tgt_packed = pack(tgt.x.reshape(-1, tgt.hidden), tgt_packing)

        out_packed = decoder_layer_packed(
            tgt_packed,
            memory,
            dec_w[0],
            CFG,
            FUSED_MHA,
            tgt_packing,
            src_packing,
        )
        out = unpack(out_packed, tgt_packing).reshape(tgt.x.shape)

        oracle = reference_decoder_layer(
            tgt.x, src.x, dec_w[0], CFG, tgt.mask, src.mask
        )
        valid = tgt.mask.astype(bool)
        np.testing.assert_allclose(
            out[valid], oracle[valid], rtol=1e-3, atol=1e-4
        )

    def test_fused_and_unfused_presets_agree(self, setup):
        _, dec_w, src, tgt = setup
        src_packing = packing_from_mask(src.mask)
        tgt_packing = packing_from_mask(tgt.mask)
        memory = pack(src.x.reshape(-1, src.hidden), src_packing)
        tgt_packed = pack(tgt.x.reshape(-1, tgt.hidden), tgt_packing)
        outs = [
            decoder_layer_packed(
                tgt_packed, memory, dec_w[0], CFG, opt,
                tgt_packing, src_packing,
            )
            for opt in (RM_PADDING, FUSED_MHA)
        ]
        np.testing.assert_allclose(outs[0], outs[1], rtol=1e-4, atol=1e-6)

    def test_rejects_padded_preset(self, setup):
        _, dec_w, src, tgt = setup
        src_packing = packing_from_mask(src.mask)
        tgt_packing = packing_from_mask(tgt.mask)
        memory = pack(src.x.reshape(-1, src.hidden), src_packing)
        tgt_packed = pack(tgt.x.reshape(-1, tgt.hidden), tgt_packing)
        with pytest.raises(ValueError, match="remove_padding"):
            decoder_layer_packed(
                tgt_packed, memory, dec_w[0], CFG, BASELINE,
                tgt_packing, src_packing,
            )


class TestSeq2Seq:
    def test_matches_oracle_end_to_end(self, setup):
        enc_w, dec_w, src, tgt = setup
        from repro.core.reference import reference_encoder

        model = Seq2SeqModel(
            CFG, FUSED_MHA, encoder_weights=enc_w, decoder_weights=dec_w
        )
        out = model.forward(src.x, src.mask, tgt.x, tgt.mask)

        memory = reference_encoder(src.x, enc_w, CFG, src.mask)
        # zero the padded memory rows, as the packed encoder produces
        memory = memory * src.mask[:, :, None]
        oracle = reference_decoder(
            tgt.x, memory, dec_w, CFG, tgt.mask, src.mask
        )
        valid = tgt.mask.astype(bool)
        np.testing.assert_allclose(
            out[valid], oracle[valid], rtol=5e-3, atol=5e-4
        )

    def test_padding_rows_zeroed(self, setup):
        enc_w, dec_w, src, tgt = setup
        model = Seq2SeqModel(
            CFG, FUSED_MHA, encoder_weights=enc_w, decoder_weights=dec_w
        )
        out = model.forward(src.x, src.mask, tgt.x, tgt.mask)
        pad = tgt.mask == 0
        assert (out[pad] == 0).all()

    def test_records_cost(self, setup):
        enc_w, dec_w, src, tgt = setup
        model = Seq2SeqModel(
            CFG, FUSED_MHA, encoder_weights=enc_w, decoder_weights=dec_w
        )
        ctx = ExecutionContext()
        model.forward(src.x, src.mask, tgt.x, tgt.mask, ctx=ctx)
        assert ctx.elapsed_us() > 0
        names = {r.launch.name for r in ctx.records}
        assert "causal_grouped_qk" in names
        assert "cross_grouped_qk" in names

    def test_rejects_padded_preset(self):
        with pytest.raises(ValueError, match="remove_padding"):
            Seq2SeqModel(CFG, BASELINE)

    def test_batch_mismatch(self, setup):
        enc_w, dec_w, src, tgt = setup
        model = Seq2SeqModel(
            CFG, FUSED_MHA, encoder_weights=enc_w, decoder_weights=dec_w
        )
        with pytest.raises(ValueError, match="batch"):
            model.forward(
                src.x, src.mask, tgt.x[:-1], tgt.mask[:-1]
            )

    def test_decoder_layer_count_validated(self, setup):
        enc_w, dec_w, _, _ = setup
        with pytest.raises(ValueError, match="layers"):
            Seq2SeqModel(
                CFG,
                FUSED_MHA,
                encoder_weights=enc_w,
                decoder_weights=dec_w[:1],
            )
