"""Decoder estimator lock-step and seq2seq sweeps."""

import numpy as np
import pytest

from repro.core.config import BASELINE, FUSED_MHA, RM_PADDING, BertConfig
from repro.core.padding import pack, packing_from_mask
from repro.decoder import decoder_layer_packed, init_decoder_weights
from repro.decoder.estimator import estimate_decoder_layer, estimate_seq2seq
from repro.gpusim import ExecutionContext
from repro.workloads.generator import make_batch

CFG = BertConfig(num_heads=4, head_size=16, num_layers=1)


@pytest.fixture(scope="module")
def packed_inputs():
    dec_w = init_decoder_weights(CFG, seed=2)
    src = make_batch(3, 24, CFG.hidden_size, alpha=0.6, seed=3)
    tgt = make_batch(3, 16, CFG.hidden_size, alpha=0.7, seed=4)
    sp = packing_from_mask(src.mask)
    tp = packing_from_mask(tgt.mask)
    mem = pack(src.x.reshape(-1, src.hidden), sp)
    tgt_p = pack(tgt.x.reshape(-1, tgt.hidden), tp)
    return dec_w, src, tgt, sp, tp, mem, tgt_p


def signature(ctx):
    return [
        (r.launch.name, r.launch.grid, round(r.launch.flops, 2))
        for r in ctx.records
    ]


class TestLockStep:
    @pytest.mark.parametrize("opt", (RM_PADDING, FUSED_MHA), ids=lambda o: o.label)
    def test_identical_launch_sequences(self, opt, packed_inputs):
        dec_w, src, tgt, sp, tp, mem, tgt_p = packed_inputs
        numeric = ExecutionContext()
        decoder_layer_packed(
            tgt_p, mem, dec_w[0], CFG, opt, tp, sp, ctx=numeric
        )
        estimated = ExecutionContext()
        estimate_decoder_layer(estimated, CFG, opt, tgt.seq_lens, src.seq_lens)
        assert signature(numeric) == signature(estimated)
        assert estimated.elapsed_us() == pytest.approx(numeric.elapsed_us())

    def test_padded_preset_rejected(self, packed_inputs):
        _, src, tgt, *_ = packed_inputs
        with pytest.raises(ValueError, match="remove_padding"):
            estimate_decoder_layer(
                ExecutionContext(), CFG, BASELINE, tgt.seq_lens, src.seq_lens
            )


class TestSeq2SeqEstimate:
    def test_positive_and_deterministic(self):
        cfg = BertConfig(num_layers=2)
        rng = np.random.default_rng(0)
        src_lens = rng.integers(40, 128, size=8)
        tgt_lens = rng.integers(20, 64, size=8)
        t1 = estimate_seq2seq(
            ExecutionContext(), cfg, FUSED_MHA, src_lens, 128, tgt_lens, 64
        )
        t2 = estimate_seq2seq(
            ExecutionContext(), cfg, FUSED_MHA, src_lens, 128, tgt_lens, 64
        )
        assert t1 > 0
        assert t1 == pytest.approx(t2)

    def test_causal_attention_cheaper_than_bidirectional(self):
        """Same lengths as self-attention targets: the decoder's causal
        strips must do less grouped-GEMM work than the encoder's full
        attention."""
        from repro.core.estimator import estimate_fused_long_mha

        cfg = BertConfig(num_layers=1)
        lens = np.array([1024] * 4)
        enc = ExecutionContext()
        estimate_fused_long_mha(enc, lens, cfg)
        enc_flops = sum(
            r.launch.flops for r in enc.records if "grouped_qk" in r.launch.name
        )

        dec = ExecutionContext()
        estimate_decoder_layer(dec, cfg, FUSED_MHA, lens, lens)
        dec_flops = sum(
            r.launch.flops
            for r in dec.records
            if r.launch.name == "causal_grouped_qk"
        )
        assert dec_flops < 0.62 * enc_flops

    def test_scheduler_choice_affects_time(self):
        cfg = BertConfig(num_layers=1)
        lens = np.array([700, 800, 650, 900] * 4)
        import dataclasses

        fast = ExecutionContext()
        estimate_decoder_layer(fast, cfg, FUSED_MHA, lens, lens)
        slow_opt = dataclasses.replace(
            FUSED_MHA, warp_prefetch_scheduler=False
        )
        slow = ExecutionContext()
        estimate_decoder_layer(slow, cfg, slow_opt, lens, lens)
        assert slow.elapsed_us() > fast.elapsed_us()


class TestDecodeRoundEstimates:
    def test_quantize_pow2(self):
        from repro.decoder.estimator import quantize_pow2

        assert quantize_pow2(1) == 1
        assert quantize_pow2(3) == 4
        assert quantize_pow2(8) == 8
        assert quantize_pow2(9) == 16
        with pytest.raises(ValueError, match="positive"):
            quantize_pow2(0)

    def test_canonical_decode_contexts_even_ceil_split(self):
        from repro.decoder.estimator import canonical_decode_contexts

        ctxs = canonical_decode_contexts(4, 10)
        np.testing.assert_array_equal(ctxs, [3, 3, 2, 2])
        assert ctxs.sum() == 10
        with pytest.raises(ValueError, match="kv_tile"):
            canonical_decode_contexts(8, 4)

    def test_tiled_never_underprices_the_real_round(self):
        """The canonical tile shapes dominate every real round that
        quantizes to them, so replaying the tile key is conservative."""
        from repro.decoder.estimator import (
            estimate_decode_round,
            estimate_decode_round_tiled,
        )
        from repro.gpusim import ExecutionContext

        rng = np.random.default_rng(5)
        for _ in range(5):
            prefills = rng.integers(1, 40, size=int(rng.integers(0, 3)))
            decodes = rng.integers(1, 60, size=int(rng.integers(1, 6)))
            eager = estimate_decode_round(
                ExecutionContext(), CFG, prefills, decodes, block_tokens=16
            )
            tiled = estimate_decode_round_tiled(
                ExecutionContext(),
                CFG,
                prefill_tile=128 if len(prefills) else 0,
                decode_batch=len(decodes),
                kv_tokens=int(decodes.sum()),
                max_seq_len=64,
                block_tokens=16,
            )
            assert tiled >= eager

    def test_decode_graph_key_captures_once_then_replays(self):
        from repro.decoder.estimator import estimate_decode_round_tiled
        from repro.gpusim import ExecutionContext
        from repro.gpusim.graph import GraphCache

        cache = GraphCache()
        kwargs = dict(
            prefill_tile=0,
            decode_batch=4,
            kv_tokens=100,
            max_seq_len=64,
            block_tokens=16,
            cache=cache,
        )
        first = estimate_decode_round_tiled(
            ExecutionContext(), CFG, **kwargs
        )
        second = estimate_decode_round_tiled(
            ExecutionContext(), CFG, **kwargs
        )
        assert first == second
        assert cache.hits == 1 and cache.misses == 1
        kinds = cache.kind_counts()
        assert kinds["decode"] == {"captures": 1, "replays": 1}

    def test_looped_round_costs_more_than_batched(self):
        from repro.decoder.estimator import (
            estimate_decode_round,
            estimate_decode_round_looped,
        )
        from repro.gpusim import ExecutionContext

        prefills = np.array([30, 20])
        decodes = np.array([40, 55, 33, 60])
        batched = estimate_decode_round(
            ExecutionContext(), CFG, prefills, decodes, block_tokens=16
        )
        looped = estimate_decode_round_looped(
            ExecutionContext(), CFG, prefills, decodes
        )
        assert looped > batched
