"""Causal self-attention and cross-attention numerics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.padding import packing_from_lengths
from repro.decoder.causal import (
    causal_cross_mha,
    causal_self_mha,
    causal_strip_problems,
    cross_problems,
)
from repro.gpusim import ExecutionContext

HEADS, HEAD_SIZE = 4, 8
HIDDEN = HEADS * HEAD_SIZE


def make_packed(rng, lens, width):
    packing = packing_from_lengths(lens, max(lens))
    data = rng.normal(size=(packing.total_tokens, width)).astype(np.float32)
    return packing, data


class TestStripProblems:
    def test_strips_cover_triangle(self):
        problems = causal_strip_problems([300], 1, HEAD_SIZE, strip=128)
        # 3 strips: 128x128, 128x256, 44x300
        shapes = [(p.m, p.n) for p in problems]
        assert shapes == [(128, 128), (128, 256), (44, 300)]

    def test_strip_flops_near_half_of_square(self):
        length = 2048
        problems = causal_strip_problems([length], 1, HEAD_SIZE, strip=128)
        strip_flops = sum(p.flops for p in problems)
        square = 2.0 * length * length * HEAD_SIZE
        assert 0.5 <= strip_flops / square <= 0.56

    def test_per_head_replication(self):
        problems = causal_strip_problems([100, 50], 3, HEAD_SIZE, strip=128)
        assert len(problems) == 2 * 3  # one strip per unit here

    def test_cross_problems_rectangular(self):
        problems = cross_problems([10, 20], [30, 5], 2, HEAD_SIZE)
        assert (problems[0].m, problems[0].n) == (10, 30)
        assert (problems[2].m, problems[2].n) == (20, 5)
        assert len(problems) == 4

    def test_cross_length_mismatch(self):
        with pytest.raises(ValueError, match="source"):
            cross_problems([10], [5, 6], 2, HEAD_SIZE)


class TestCausalSelfMha:
    def oracle(self, q, k, v):
        """Direct causal attention on one (unit, head)."""
        from repro.kernels.softmax import softmax_reference

        length = q.shape[0]
        scores = q @ k.T / np.sqrt(HEAD_SIZE)
        scores = np.where(
            np.tril(np.ones((length, length), dtype=bool)), scores, -np.inf
        )
        return softmax_reference(scores) @ v

    def test_matches_direct_causal(self, rng):
        lens = [6, 10, 3]
        packing, qkv = make_packed(rng, lens, 3 * HIDDEN)
        bias = rng.normal(size=3 * HIDDEN).astype(np.float32)
        out = causal_self_mha(qkv, bias, packing, HEADS)
        biased = qkv + bias
        for b, length in enumerate(lens):
            rows = packing.rows_of(b)
            for h in range(HEADS):
                cols = slice(h * HEAD_SIZE, (h + 1) * HEAD_SIZE)
                expected = self.oracle(
                    biased[rows, :HIDDEN][:, cols],
                    biased[rows, HIDDEN : 2 * HIDDEN][:, cols],
                    biased[rows, 2 * HIDDEN :][:, cols],
                )
                np.testing.assert_allclose(
                    out[rows, cols], expected, rtol=1e-4, atol=1e-6
                )

    def test_causality_property(self, rng):
        """Output at position i must not change when later tokens change."""
        lens = [8]
        packing, qkv = make_packed(rng, lens, 3 * HIDDEN)
        bias = np.zeros(3 * HIDDEN, dtype=np.float32)
        base = causal_self_mha(qkv, bias, packing, HEADS)

        mutated = qkv.copy()
        mutated[5:] += 10.0  # change tokens 5..7
        out = causal_self_mha(mutated, bias, packing, HEADS)
        np.testing.assert_allclose(out[:5], base[:5], rtol=1e-5)
        assert not np.allclose(out[5:], base[5:])

    def test_first_token_attends_to_itself_only(self, rng):
        lens = [5]
        packing, qkv = make_packed(rng, lens, 3 * HIDDEN)
        bias = np.zeros(3 * HIDDEN, dtype=np.float32)
        out = causal_self_mha(qkv, bias, packing, HEADS)
        v_first = (qkv[0, 2 * HIDDEN :]).reshape(HEADS, HEAD_SIZE)
        np.testing.assert_allclose(
            out[0].reshape(HEADS, HEAD_SIZE), v_first, rtol=1e-5
        )

    def test_three_launches(self, rng):
        packing, qkv = make_packed(rng, [6, 4], 3 * HIDDEN)
        ctx = ExecutionContext()
        causal_self_mha(
            qkv, np.zeros(3 * HIDDEN, dtype=np.float32), packing, HEADS,
            ctx=ctx,
        )
        assert [r.launch.name for r in ctx.records] == [
            "causal_grouped_qk",
            "softmax_full_reduction",
            "causal_grouped_pv",
        ]

    def test_causal_cheaper_than_full(self, rng):
        """The strip decomposition must cost roughly half the full FMHA
        at long lengths."""
        from repro.core.estimator import estimate_fused_long_mha
        from repro.core.config import BertConfig

        lens = np.array([1024] * 8)
        cfg = BertConfig(num_layers=1)
        full = ExecutionContext()
        estimate_fused_long_mha(full, lens, cfg)

        packing = packing_from_lengths(lens, 1024)
        causal = ExecutionContext()
        # cost-only: tiny fake tensors would break numerics, so reuse the
        # launch path via a real (but small-width) tensor is too slow;
        # instead compare the grouped-GEMM flops directly
        from repro.decoder.causal import causal_strip_problems

        causal_flops = sum(
            p.flops
            for p in causal_strip_problems(
                [int(v) for v in lens], cfg.num_heads, cfg.head_size
            )
        )
        full_flops = sum(
            r.launch.flops
            for r in full.records
            if r.launch.name == "fmha_grouped_qk"
        )
        assert causal_flops < 0.6 * full_flops


class TestCrossMha:
    def test_matches_direct(self, rng):
        tgt_lens, src_lens = [4, 7], [9, 5]
        tgt_packing, q = make_packed(rng, tgt_lens, HIDDEN)
        src_packing, kv = make_packed(rng, src_lens, 2 * HIDDEN)
        q_bias = rng.normal(size=HIDDEN).astype(np.float32)
        kv_bias = rng.normal(size=2 * HIDDEN).astype(np.float32)

        out = causal_cross_mha(
            q, q_bias, kv, kv_bias, tgt_packing, src_packing, HEADS
        )
        from repro.kernels.softmax import softmax_reference

        qb = q + q_bias
        kvb = kv + kv_bias
        for b in range(2):
            t_rows = tgt_packing.rows_of(b)
            s_rows = src_packing.rows_of(b)
            for h in range(HEADS):
                cols = slice(h * HEAD_SIZE, (h + 1) * HEAD_SIZE)
                scores = (
                    qb[t_rows, cols] @ kvb[s_rows, :HIDDEN][:, cols].T
                ) / np.sqrt(HEAD_SIZE)
                expected = softmax_reference(scores) @ kvb[
                    s_rows, HIDDEN:
                ][:, cols]
                np.testing.assert_allclose(
                    out[t_rows, cols], expected, rtol=1e-4, atol=1e-6
                )

    def test_batch_mismatch_rejected(self, rng):
        tgt_packing, q = make_packed(rng, [4], HIDDEN)
        src_packing, kv = make_packed(rng, [5, 6], 2 * HIDDEN)
        with pytest.raises(ValueError, match="batch"):
            causal_cross_mha(
                q,
                np.zeros(HIDDEN, dtype=np.float32),
                kv,
                np.zeros(2 * HIDDEN, dtype=np.float32),
                tgt_packing,
                src_packing,
                HEADS,
            )

    def test_kv_width_validated(self, rng):
        tgt_packing, q = make_packed(rng, [4], HIDDEN)
        src_packing, kv = make_packed(rng, [5], HIDDEN)  # wrong width
        with pytest.raises(ValueError, match="KV width"):
            causal_cross_mha(
                q,
                np.zeros(HIDDEN, dtype=np.float32),
                kv,
                np.zeros(2 * HIDDEN, dtype=np.float32),
                tgt_packing,
                src_packing,
                HEADS,
            )

    @given(
        tgt=st.lists(st.integers(1, 8), min_size=1, max_size=4),
        extra=st.lists(st.integers(1, 8), min_size=4, max_size=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_rows_preserved_property(self, tgt, extra):
        rng = np.random.default_rng(sum(tgt))
        src = extra[: len(tgt)]
        tgt_packing, q = make_packed(rng, tgt, HIDDEN)
        src_packing, kv = make_packed(rng, src, 2 * HIDDEN)
        out = causal_cross_mha(
            q,
            np.zeros(HIDDEN, dtype=np.float32),
            kv,
            np.zeros(2 * HIDDEN, dtype=np.float32),
            tgt_packing,
            src_packing,
            HEADS,
        )
        assert out.shape == (sum(tgt), HIDDEN)
        assert np.isfinite(out).all()
