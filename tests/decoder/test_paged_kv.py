"""Paged KV arena: block tables, eviction/resume, zero-overflow pool."""

import numpy as np
import pytest

from repro.decoder.paged_kv import (
    DEFAULT_KV_BLOCK_TOKENS,
    KVPressureError,
    PagedKVArena,
)

HIDDEN = 32


def rows(rng, n):
    return rng.normal(size=(n, HIDDEN)), rng.normal(size=(n, HIDDEN))


class TestPool:
    def test_capacity_rounds_up_to_whole_blocks(self):
        arena = PagedKVArena(HIDDEN, 50, block_tokens=16)
        assert arena.num_blocks == 4
        assert arena.capacity_tokens == 64

    def test_default_block_size(self):
        arena = PagedKVArena(HIDDEN, 64)
        assert arena.block_tokens == DEFAULT_KV_BLOCK_TOKENS

    def test_zero_overflow_allocs_across_full_churn(self, rng):
        arena = PagedKVArena(HIDDEN, 64, block_tokens=8)
        for cycle in range(3):
            for rid in range(4):
                arena.append_rows(rid, *rows(rng, 13))
            for rid in range(4):
                arena.free(rid)
        assert arena.overflow_allocs == 0
        assert arena.free_blocks == arena.num_blocks

    def test_block_handout_is_deterministic_lifo(self, rng):
        a = PagedKVArena(HIDDEN, 64, block_tokens=8)
        b = PagedKVArena(HIDDEN, 64, block_tokens=8)
        for arena in (a, b):
            arena.append_rows(7, *rows(rng, 10))
            arena.append_rows(9, *rows(rng, 3))
        assert a.block_table(7) == b.block_table(7) == (0, 1)
        assert a.block_table(9) == b.block_table(9) == (2,)

    def test_blocks_needed(self, rng):
        arena = PagedKVArena(HIDDEN, 64, block_tokens=8)
        assert arena.blocks_needed(0, 9) == 2
        arena.append_rows(0, *rows(rng, 9))
        # 7 more tokens fit the half-full second block
        assert arena.blocks_needed(0, 7) == 0
        assert arena.blocks_needed(0, 8) == 1
        with pytest.raises(ValueError, match=">= 0"):
            arena.blocks_needed(0, -1)

    def test_occupancy_counts_only_valid_slots(self, rng):
        arena = PagedKVArena(HIDDEN, 64, block_tokens=8)
        assert arena.occupancy == 1.0  # empty pool: vacuously dense
        arena.append_rows(0, *rows(rng, 12))  # 2 blocks, 4 tail slots idle
        assert arena.occupancy == pytest.approx(12 / 16)
        assert arena.live_tokens == 12
        assert arena.live_blocks == 2


class TestGather:
    def test_gathered_is_bitwise_append_order(self, rng):
        arena = PagedKVArena(HIDDEN, 64, block_tokens=8)
        k1, v1 = rows(rng, 11)
        k2, v2 = rows(rng, 1)
        arena.append_rows(0, k1, v1)
        arena.append_rows(0, k2, v2)
        keys, values = arena.gathered(0)
        np.testing.assert_array_equal(keys, np.concatenate([k1, k2]))
        np.testing.assert_array_equal(values, np.concatenate([v1, v2]))

    def test_interleaved_requests_stay_isolated(self, rng):
        arena = PagedKVArena(HIDDEN, 128, block_tokens=8)
        streams = {rid: rows(rng, 5 + rid) for rid in range(3)}
        for step in range(3):
            for rid, (k, v) in streams.items():
                arena.append_rows(rid, k[step : step + 1], v[step : step + 1])
        for rid, (k, v) in streams.items():
            keys, values = arena.gathered(rid)
            np.testing.assert_array_equal(keys, k[:3])
            np.testing.assert_array_equal(values, v[:3])

    def test_unknown_request_raises(self):
        arena = PagedKVArena(HIDDEN, 64)
        with pytest.raises(KeyError, match="no KV blocks"):
            arena.gathered(42)
        with pytest.raises(KeyError, match="no KV blocks"):
            arena.context_len(42)


class TestPressure:
    def test_exhausted_pool_raises_not_allocates(self, rng):
        arena = PagedKVArena(HIDDEN, 32, block_tokens=8)
        arena.append_rows(0, *rows(rng, 32))
        with pytest.raises(KVPressureError, match="free"):
            arena.append_rows(1, *rows(rng, 1))
        assert arena.overflow_allocs == 0

    def test_swap_out_then_in_is_bitwise(self, rng):
        arena = PagedKVArena(HIDDEN, 64, block_tokens=8)
        k, v = rows(rng, 13)
        arena.append_rows(0, k, v)
        assert arena.swap_out(0) == 13
        assert arena.is_swapped(0)
        assert not arena.has(0)
        assert arena.free_blocks == arena.num_blocks
        assert arena.swap_in(0) == 13
        keys, values = arena.gathered(0)
        np.testing.assert_array_equal(keys, k)
        np.testing.assert_array_equal(values, v)
        assert arena.evictions == 1
        assert arena.swap_ins == 1

    def test_append_to_swapped_request_raises(self, rng):
        arena = PagedKVArena(HIDDEN, 64, block_tokens=8)
        arena.append_rows(0, *rows(rng, 4))
        arena.swap_out(0)
        with pytest.raises(KVPressureError, match="swapped out"):
            arena.append_rows(0, *rows(rng, 1))

    def test_swap_in_without_room_raises(self, rng):
        arena = PagedKVArena(HIDDEN, 32, block_tokens=8)
        arena.append_rows(0, *rows(rng, 16))
        arena.swap_out(0)
        arena.append_rows(1, *rows(rng, 32))
        with pytest.raises(KVPressureError, match="swap_in"):
            arena.swap_in(0)
        # the host copy survives the refused restore
        assert arena.is_swapped(0)

    def test_swap_in_unknown_raises(self):
        arena = PagedKVArena(HIDDEN, 32)
        with pytest.raises(KeyError, match="not swapped out"):
            arena.swap_in(5)

    def test_free_returns_blocks_and_drops_swapped_copy(self, rng):
        arena = PagedKVArena(HIDDEN, 64, block_tokens=8)
        arena.append_rows(0, *rows(rng, 10))
        arena.swap_out(0)
        arena.free(0)  # finished while swapped out
        assert not arena.is_swapped(0)
        assert arena.free_blocks == arena.num_blocks


class TestAccounting:
    def test_modelled_bytes_are_fp16_blocks(self, rng):
        arena = PagedKVArena(HIDDEN, 64, block_tokens=8)
        arena.append_rows(0, *rows(rng, 9))  # 2 live blocks
        assert arena.live_bytes == 2 * 8 * 2 * HIDDEN * 2
        arena.free(0)
        assert arena.live_bytes == 0
        assert arena.peak_live_bytes == 2 * 8 * 2 * HIDDEN * 2

    def test_shape_validation(self, rng):
        arena = PagedKVArena(HIDDEN, 32)
        k, v = rows(rng, 2)
        with pytest.raises(ValueError, match="key rows"):
            arena.append_rows(0, k[:, :8], v[:, :8])
        with pytest.raises(ValueError, match="must match"):
            arena.append_rows(0, k, v[:1])
