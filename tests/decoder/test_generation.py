"""Incremental decoding: the cache must reproduce full causal attention."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.padding import packing_from_lengths
from repro.decoder.causal import causal_self_mha
from repro.decoder.generation import (
    PackedKVCache,
    decode_attention_launch,
    decode_self_attention_step,
    generation_traffic_ratio,
)
from repro.gpusim import ExecutionContext

HEADS, HEAD_SIZE = 4, 8
HIDDEN = HEADS * HEAD_SIZE


class TestCache:
    def test_append_and_lengths(self, rng):
        cache = PackedKVCache(batch=3, hidden=HIDDEN)
        for _ in range(4):
            cache.append(
                rng.normal(size=(3, HIDDEN)), rng.normal(size=(3, HIDDEN))
            )
        np.testing.assert_array_equal(cache.lengths(), [4, 4, 4])
        assert cache.keys(0).shape == (4, HIDDEN)

    def test_prompt_prefill_respects_lengths(self, rng):
        cache = PackedKVCache(batch=2, hidden=HIDDEN)
        k = rng.normal(size=(2, 6, HIDDEN))
        v = rng.normal(size=(2, 6, HIDDEN))
        cache.append_prompt(k, v, np.array([3, 6]))
        np.testing.assert_array_equal(cache.lengths(), [3, 6])
        np.testing.assert_array_equal(cache.keys(0), k[0, :3])

    def test_packed_vs_padded_bytes(self, rng):
        cache = PackedKVCache(batch=4, hidden=HIDDEN)
        k = rng.normal(size=(4, 10, HIDDEN))
        cache.append_prompt(k, k, np.array([2, 4, 6, 10]))
        assert cache.packed_bytes < cache.padded_bytes()
        assert cache.padded_bytes() == 2 * 4 * 10 * HIDDEN * 2

    def test_shape_validation(self, rng):
        cache = PackedKVCache(batch=2, hidden=HIDDEN)
        with pytest.raises(ValueError, match="keys"):
            cache.append(
                rng.normal(size=(3, HIDDEN)), rng.normal(size=(3, HIDDEN))
            )

    def test_bad_constructor(self):
        with pytest.raises(ValueError, match="positive"):
            PackedKVCache(batch=0, hidden=HIDDEN)


class TestIncrementalEqualsFull:
    def test_step_by_step_matches_causal_mha(self, rng):
        """The core contract: decoding token by token through the cache
        reproduces the full causal self-attention over the same tokens."""
        length = 9
        qkv = rng.normal(size=(length, 3 * HIDDEN)).astype(np.float64)
        packing = packing_from_lengths([length], length)
        full = causal_self_mha(
            qkv, np.zeros(3 * HIDDEN), packing, HEADS
        )

        cache = PackedKVCache(batch=1, hidden=HIDDEN)
        for t in range(length):
            step_out = decode_self_attention_step(
                qkv[t : t + 1, :HIDDEN],
                qkv[t : t + 1, HIDDEN : 2 * HIDDEN],
                qkv[t : t + 1, 2 * HIDDEN :],
                cache,
                HEADS,
            )
            np.testing.assert_allclose(
                step_out[0], full[t], rtol=1e-8, atol=1e-10
            )

    def test_batch_of_different_prompts(self, rng):
        """Batched decode with unequal context lengths stays per-sequence
        correct (each row only sees its own history)."""
        cache = PackedKVCache(batch=2, hidden=HIDDEN)
        prompt_k = rng.normal(size=(2, 5, HIDDEN))
        prompt_v = rng.normal(size=(2, 5, HIDDEN))
        cache.append_prompt(prompt_k, prompt_v, np.array([2, 5]))

        q = rng.normal(size=(2, HIDDEN))
        k = rng.normal(size=(2, HIDDEN))
        v = rng.normal(size=(2, HIDDEN))
        out = decode_self_attention_step(q, k, v, cache, HEADS)

        # sequence 0's result must be computable from its 3-row history
        solo = PackedKVCache(batch=1, hidden=HIDDEN)
        solo.append_prompt(prompt_k[:1], prompt_v[:1], np.array([2]))
        solo_out = decode_self_attention_step(
            q[:1], k[:1], v[:1], solo, HEADS
        )
        np.testing.assert_allclose(out[0], solo_out[0], rtol=1e-10)

    @given(length=st.integers(1, 12))
    @settings(max_examples=15, deadline=None)
    def test_property_any_length(self, length):
        rng = np.random.default_rng(length)
        qkv = rng.normal(size=(length, 3 * HIDDEN))
        packing = packing_from_lengths([length], length)
        full = causal_self_mha(qkv, np.zeros(3 * HIDDEN), packing, HEADS)
        cache = PackedKVCache(batch=1, hidden=HIDDEN)
        for t in range(length):
            out = decode_self_attention_step(
                qkv[t : t + 1, :HIDDEN],
                qkv[t : t + 1, HIDDEN : 2 * HIDDEN],
                qkv[t : t + 1, 2 * HIDDEN :],
                cache,
                HEADS,
            )
            np.testing.assert_allclose(out[0], full[t], rtol=1e-7, atol=1e-9)


class TestDecodeCost:
    def test_one_launch_per_step(self, rng):
        cache = PackedKVCache(batch=2, hidden=HIDDEN)
        ctx = ExecutionContext()
        decode_self_attention_step(
            rng.normal(size=(2, HIDDEN)),
            rng.normal(size=(2, HIDDEN)),
            rng.normal(size=(2, HIDDEN)),
            cache,
            HEADS,
            ctx=ctx,
        )
        assert ctx.kernel_count() == 1
        assert ctx.records[0].launch.name == "decode_attention"

    def test_packed_cheaper_than_padded_for_ragged_contexts(self):
        lens = np.array([100, 900, 150, 200])
        packed = decode_attention_launch(lens, 12, 64, padded=False)
        padded = decode_attention_launch(lens, 12, 64, padded=True)
        assert packed.dram_bytes < padded.dram_bytes
        assert packed.flops < padded.flops

    def test_equal_contexts_equal_cost(self):
        lens = np.array([300, 300, 300])
        packed = decode_attention_launch(lens, 12, 64, padded=False)
        padded = decode_attention_launch(lens, 12, 64, padded=True)
        assert packed.dram_bytes == pytest.approx(padded.dram_bytes)

    def test_traffic_ratio_closed_form(self):
        # prompts of 100/300, generate 10 tokens, cap 512
        ratio = generation_traffic_ratio(np.array([100, 300]), 10, 512)
        assert ratio > 1.0
        # hand-check: packed per step t: 400 + 2t; padded: 1024
        packed = sum(400 + 2 * t for t in range(1, 11))
        assert ratio == pytest.approx(1024 * 10 / packed)

    def test_traffic_ratio_validation(self):
        with pytest.raises(ValueError, match="steps"):
            generation_traffic_ratio(np.array([10]), 0, 64)
        with pytest.raises(ValueError, match="max_context"):
            generation_traffic_ratio(np.array([60]), 10, 64)
