"""Extension — FlashAttention's variable-length waste (§II-B claim)."""

from repro.experiments import ablation_flash


def test_flash_varlen_waste(benchmark, emit):
    result = benchmark(ablation_flash.run)
    emit(ablation_flash.format_result(result))
    assert result.flash_cost_alpha_independent()
    assert result.gap_widens_as_alpha_falls()
    # at the paper's alpha the padding-free kernel must win clearly
    at_06 = next(p for p in result.points if abs(p.alpha - 0.6) < 1e-9)
    assert at_06.byte_gain > 0.3
    benchmark.extra_info.update(
        gains={f"{p.alpha:.2f}": round(p.byte_gain, 3) for p in result.points}
    )
