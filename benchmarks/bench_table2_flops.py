"""Table II — FLOP counts under the zero-padding algorithm."""

import pytest

from repro.experiments import table2_flops


def test_table2_flop_counts(benchmark, emit):
    result = benchmark(
        table2_flops.run, batch=16, max_seq_len=1024, alpha=0.6
    )
    emit(table2_flops.format_result(result))
    base = result.columns["Baseline"]
    packed = result.columns["Zero Padding"]
    fused = result.columns["Zero Padding + fused MHA"]
    assert packed.gemm0 / base.gemm0 == pytest.approx(0.6)
    assert fused.mha / base.mha == pytest.approx(0.36)
    benchmark.extra_info.update(
        baseline_gflops=round(base.total / 1e9, 2),
        zero_padding_gflops=round(packed.total / 1e9, 2),
        fused_mha_gflops=round(fused.total / 1e9, 2),
    )
