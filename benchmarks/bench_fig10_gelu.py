"""Figure 10 — GEMM + add-bias + GELU epilogue fusion."""

from repro.experiments import fig10_gelu_fusion


def test_fig10_gelu_epilogue_fusion(benchmark, emit):
    result = benchmark(fig10_gelu_fusion.run)
    emit(fig10_gelu_fusion.format_result(result))
    assert result.average_gain > 0.15  # paper: 24%; our model runs higher
    for p in result.points:
        assert p.fused_us < p.unfused_us
    benchmark.extra_info.update(
        average_gain=round(result.average_gain, 3),
        paper_gain=fig10_gelu_fusion.PAPER_AVG_GAIN,
    )
