"""Figure 13 — single-layer BERT with step-wise optimisations."""

from repro.experiments import fig13_stepwise


def test_fig13_stepwise_optimisations(benchmark, emit):
    result = benchmark(fig13_stepwise.run)
    emit(fig13_stepwise.format_result(result))
    # the ladder improves at every step on average, and lands near +60%
    for step in range(1, 5):
        assert result.average_step_gain(step) > 0.0
    assert 0.4 <= result.average_total_gain <= 1.1  # paper: 0.60
    benchmark.extra_info.update(
        step_gains=[
            round(result.average_step_gain(step), 4) for step in range(1, 5)
        ],
        total_gain=round(result.average_total_gain, 4),
        paper_step_gains=list(fig13_stepwise.PAPER_STEP_GAINS),
        paper_total_gain=fig13_stepwise.PAPER_TOTAL_GAIN,
    )
