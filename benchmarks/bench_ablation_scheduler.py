"""§III-E.2 ablations — warp-prefetch scheduler and full-reduction share."""

from repro.experiments import ablation_scheduler


def test_scheduler_and_full_reduction_ablation(benchmark, emit):
    result = benchmark(ablation_scheduler.run)
    emit(ablation_scheduler.format_result(result))
    assert 0.04 <= result.average_gain <= 0.2  # paper: ~10%
    assert result.average_full_reduction_share <= 0.06  # paper: ~2%
    benchmark.extra_info.update(
        scheduler_gain=round(result.average_gain, 4),
        full_reduction_share=round(
            result.average_full_reduction_share, 4
        ),
        paper_scheduler_gain=ablation_scheduler.PAPER_SCHEDULER_GAIN,
        paper_full_reduction_share=(
            ablation_scheduler.PAPER_FULL_REDUCTION_SHARE
        ),
    )
