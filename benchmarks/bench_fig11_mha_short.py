"""Figure 11 — fused MHA for short sequences."""

from repro.experiments import fig11_mha_short


def test_fig11_fused_mha_short(benchmark, emit):
    result = benchmark(fig11_mha_short.run)
    emit(fig11_mha_short.format_result(result))
    # shape assertions mirroring the paper's claims
    assert 4.0 <= result.average_gain("pytorch") <= 9.0  # paper: 6.17
    assert result.average_gain("cublas") > 0.2  # paper: 0.42
    assert result.average_gain("zeropad") > 0.1  # paper: 0.30
    benchmark.extra_info.update(
        {
            f"gain_vs_{variant}": round(result.average_gain(variant), 3)
            for variant in ("pytorch", "cublas", "zeropad")
        }
    )
    benchmark.extra_info["paper_gains"] = fig11_mha_short.PAPER_GAINS
