"""Figure 3 — single-layer BERT profiling breakdown (seq 256 and 1024)."""

import pytest

from repro.experiments import fig3_breakdown


@pytest.mark.parametrize("seq_len", fig3_breakdown.PROFILED_SEQS)
def test_fig3_single_layer_breakdown(benchmark, emit, seq_len):
    result = benchmark(fig3_breakdown.run, seq_len)
    emit(result.report.to_table(f"Figure 3, seq_len={seq_len}"))

    paper_gemm, paper_attn, paper_mem = fig3_breakdown.PAPER_SHARES[seq_len]
    assert result.gemm_share == pytest.approx(paper_gemm, abs=0.10)
    assert result.attention_share == pytest.approx(paper_attn, abs=0.10)
    benchmark.extra_info.update(
        gemm_share=round(result.gemm_share, 3),
        attention_share=round(result.attention_share, 3),
        memory_bound_share=round(result.memory_bound_share, 3),
        paper_gemm_share=paper_gemm,
        paper_attention_share=paper_attn,
        paper_memory_share=paper_mem,
    )
