"""Table I — framework feature matrix."""

from repro.experiments import table1_features


def test_table1_feature_matrix(benchmark, emit):
    result = benchmark(table1_features.run)
    assert result.matches_paper
    emit(table1_features.format_result(result))
    benchmark.extra_info["matches_paper"] = result.matches_paper
