"""Figure 12 — fused MHA for long sequences (grouped-GEMM FMHA)."""

from repro.experiments import fig11_mha_short, fig12_mha_long


def test_fig12_fused_mha_long(benchmark, emit):
    result = benchmark(fig12_mha_long.run)
    emit(fig12_mha_long.format_result(result))
    assert result.average_gain("cublas") > 0.6  # paper: 1.10
    assert 0.4 <= result.average_gain("zeropad") <= 1.3  # paper: 0.79
    # the fused advantage must be larger here than in the short regime
    short = fig11_mha_short.run(seq_lens=(128, 256))
    assert result.average_gain("cublas") > short.average_gain("cublas")
    benchmark.extra_info.update(
        {
            f"gain_vs_{variant}": round(result.average_gain(variant), 3)
            for variant in ("pytorch", "cublas", "zeropad")
        }
    )
    benchmark.extra_info["paper_gains"] = fig12_mha_long.PAPER_GAINS
