"""Figure 9 — add-bias + layernorm kernel fusion."""

from repro.experiments import fig9_layernorm_fusion


def test_fig9_layernorm_fusion(benchmark, emit):
    result = benchmark(fig9_layernorm_fusion.run)
    emit(fig9_layernorm_fusion.format_result(result))
    assert 0.45 <= result.average_gain <= 0.95  # paper: ~69%
    benchmark.extra_info.update(
        average_gain=round(result.average_gain, 3),
        paper_gain=fig9_layernorm_fusion.PAPER_AVG_GAIN,
        per_seq={
            p.seq_len: round(p.gain, 3) for p in result.points
        },
    )
