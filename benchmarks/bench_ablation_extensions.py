"""Extension ablations beyond the paper: fill-ratio and device sweeps."""

from repro.experiments import ablation_alpha, ablation_devices


def test_alpha_sensitivity_sweep(benchmark, emit):
    result = benchmark(ablation_alpha.run)
    emit(ablation_alpha.format_result(result))
    assert result.gains_monotone_decreasing()
    benchmark.extra_info.update(
        gains={
            f"{p.alpha:.1f}": round(p.gain_vs_baseline, 3)
            for p in result.points
        }
    )


def test_device_sensitivity_sweep(benchmark, emit):
    result = benchmark(ablation_devices.run)
    emit(ablation_devices.format_result(result))
    assert result.wins_everywhere()
    benchmark.extra_info["devices"] = sorted(
        {p.device for p in result.points}
    )


def test_decode_kv_cache_sweep(benchmark, emit):
    from repro.experiments import ablation_decode

    result = benchmark(ablation_decode.run)
    emit(ablation_decode.format_result(result))
    assert result.gain_shrinks_with_alpha()
    for p in result.points:
        assert p.step_gain > 0.0
        assert p.traffic_ratio > 1.0
    benchmark.extra_info.update(
        step_gains={f"{p.alpha:.1f}": round(p.step_gain, 3) for p in result.points}
    )
