"""Benchmark-suite configuration.

Each benchmark file regenerates one table or figure of the paper.  The
benchmarked callable runs the experiment harness (simulator sweeps, not
wall-clock GPU time); the figure's data — the rows/series the paper
plots — is attached to ``benchmark.extra_info`` and printed once per
bench so ``pytest benchmarks/ --benchmark-only`` reproduces the paper's
evaluation section end to end.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--print-figures",
        action="store_true",
        default=True,
        help="print each regenerated figure/table to stdout",
    )


@pytest.fixture()
def emit(request, capsys):
    """Print a regenerated figure outside of captured output."""

    def _emit(text: str) -> None:
        if request.config.getoption("--print-figures"):
            with capsys.disabled():
                print(f"\n{text}")

    return _emit
