"""Extension — activation-memory footprint, padded vs packed."""

from repro.experiments import ablation_memory


def test_memory_footprint_sweep(benchmark, emit):
    result = benchmark(ablation_memory.run)
    emit(ablation_memory.format_result(result))
    assert result.reduction_grows_within_short_regime()
    assert result.reduction_substantial(1.5)
    benchmark.extra_info.update(
        peak_reduction={
            p.max_seq_len: round(p.peak_reduction, 2) for p in result.points
        }
    )
