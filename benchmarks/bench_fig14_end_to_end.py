"""Figure 14 — end-to-end 12-layer BERT across all five frameworks."""

import pytest

from repro.experiments import fig14_end_to_end


@pytest.mark.parametrize("batch", fig14_end_to_end.BATCH_GRID)
def test_fig14_end_to_end(benchmark, emit, batch):
    result = benchmark(
        fig14_end_to_end.run,
        batches=(batch,),
        seq_lens=fig14_end_to_end.SEQ_GRID,
    )
    emit(fig14_end_to_end.format_result(result))
    for p in result.points:
        bt = p.times_us["ByteTransformer"]
        for name, t in p.times_us.items():
            if name != "ByteTransformer":
                assert bt <= t * 1.02, (p.batch, p.max_seq_len, name)
    benchmark.extra_info["batch"] = batch
    benchmark.extra_info.update(
        {
            f"gain_vs_{name.replace(' ', '_')}": round(
                result.average_gain(name), 3
            )
            for name in fig14_end_to_end.PAPER_GAINS
        }
    )


def test_fig14_average_gains_full_sweep(benchmark, emit):
    """The headline numbers: averages over the full batch x seqlen grid."""
    result = benchmark(fig14_end_to_end.run)
    lines = ["== Figure 14 headline averages =="]
    for comp in fig14_end_to_end.comparisons(result):
        lines.append(comp.render())
    emit("\n".join(lines))
    gains = {
        name: result.average_gain(name)
        for name in fig14_end_to_end.PAPER_GAINS
    }
    # paper ordering: Turbo and XLA worst, then PyTorch, FT closest
    assert gains["TurboTransformer"] > gains["PyTorch JIT"]
    assert gains["TensorFlow XLA"] > gains["PyTorch JIT"]
    assert gains["PyTorch JIT"] > gains["FasterTransformer"] > 0.1
    benchmark.extra_info.update(
        {k.replace(" ", "_"): round(v, 3) for k, v in gains.items()}
    )
