#!/usr/bin/env python
"""Wall-clock benchmark entry point.

Times the vectorized execution engine against the seed's looped reference
on a 12-layer BERT forward (batch 16, max_seq_len 256, alpha 0.6, fused
preset by default) and writes ``BENCH_wallclock.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--quick] [--out PATH]

Equivalent to ``repro bench``; see that subcommand for all knobs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.wallclock import (  # noqa: E402
    QUICK_OVERRIDES,
    format_summary,
    run_wallclock_bench,
    write_bench_json,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument("--max-seq-len", type=int, default=256)
    parser.add_argument("--alpha", type=float, default=0.6)
    parser.add_argument("--layers", type=int, default=12)
    parser.add_argument("--preset", default="fused MHA")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny-shape smoke run (CI): overrides batch/seq/layers/repeats",
    )
    parser.add_argument(
        "--out",
        default="BENCH_wallclock.json",
        help="output JSON path (default: BENCH_wallclock.json)",
    )
    args = parser.parse_args(argv)

    kwargs = dict(
        batch=args.batch,
        max_seq_len=args.max_seq_len,
        alpha=args.alpha,
        layers=args.layers,
        preset=args.preset,
        repeats=args.repeats,
        seed=args.seed,
    )
    if args.quick:
        kwargs.update(QUICK_OVERRIDES)

    result = run_wallclock_bench(**kwargs)
    path = write_bench_json(result, args.out)
    print(format_summary(result))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
